package span

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Node is one span in a stitched tree.
type Node struct {
	Record
	Children []*Node
}

// Tree is the result of stitching span records fetched from every fleet
// process: a forest of root spans (spans whose parent is absent from the
// set), ordered by start time.
type Tree struct {
	Roots    []*Node
	Services []string // distinct span services, sorted
	Traces   []string // distinct trace ids, sorted
	Count    int      // total spans after dedup
}

// Stitch builds the tree from records gathered across processes.
// Duplicate (trace, span) pairs — e.g. the same ring fetched twice — are
// dropped; children sort by start time.
func Stitch(records []Record) *Tree {
	type key struct{ trace, span string }
	nodes := make(map[key]*Node, len(records))
	order := make([]*Node, 0, len(records))
	for _, r := range records {
		k := key{r.TraceID, r.SpanID}
		if _, dup := nodes[k]; dup {
			continue
		}
		n := &Node{Record: r}
		nodes[k] = n
		order = append(order, n)
	}
	t := &Tree{Count: len(order)}
	services := make(map[string]bool)
	traces := make(map[string]bool)
	for _, n := range order {
		services[n.Service] = true
		traces[n.TraceID] = true
		if p, ok := nodes[key{n.TraceID, n.ParentID}]; ok && n.ParentID != "" {
			p.Children = append(p.Children, n)
		} else {
			t.Roots = append(t.Roots, n)
		}
	}
	for _, n := range order {
		sortNodes(n.Children)
	}
	sortNodes(t.Roots)
	for s := range services { // mmtvet:ok — sorted below
		if s != "" {
			t.Services = append(t.Services, s)
		}
	}
	for id := range traces { // mmtvet:ok — sorted below
		t.Traces = append(t.Traces, id)
	}
	sort.Strings(t.Services)
	sort.Strings(t.Traces)
	return t
}

func sortNodes(ns []*Node) {
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].StartUNS != ns[j].StartUNS {
			return ns[i].StartUNS < ns[j].StartUNS
		}
		return ns[i].Name < ns[j].Name
	})
}

// Links returns span contexts linked from this tree whose target trace is
// NOT part of it — the joiner-to-creator edges a renderer should chase.
func (t *Tree) Links() []SpanContext {
	present := make(map[string]bool, len(t.Traces))
	for _, id := range t.Traces {
		present[id] = true
	}
	var out []SpanContext
	seen := make(map[string]bool)
	t.Walk(func(n *Node, _ int) {
		if n.LinkTrace != "" && !present[n.LinkTrace] && !seen[n.LinkTrace] {
			seen[n.LinkTrace] = true
			out = append(out, SpanContext{TraceID: n.LinkTrace, SpanID: n.LinkSpan})
		}
	})
	return out
}

// Walk visits every node depth-first with its depth.
func (t *Tree) Walk(f func(n *Node, depth int)) {
	var rec func(n *Node, d int)
	rec = func(n *Node, d int) {
		f(n, d)
		for _, c := range n.Children {
			rec(c, d)
		}
	}
	for _, r := range t.Roots {
		rec(r, 0)
	}
}

// Window returns the tree's wall-clock extent in unix nanoseconds.
func (t *Tree) Window() (start, end int64) {
	t.Walk(func(n *Node, _ int) {
		if start == 0 || n.StartUNS < start {
			start = n.StartUNS
		}
		if e := n.EndUNS(); e > end {
			end = e
		}
	})
	return start, end
}

const barWidth = 30

// WriteWaterfall renders the tree as a text waterfall: one row per span
// with its offset from the trace start, duration, a proportional bar,
// the owning process, and the span name with attributes. Dedup joiner
// links render as "link=<span>@<trace>".
func (t *Tree) WriteWaterfall(w io.Writer) {
	if t.Count == 0 {
		fmt.Fprintln(w, "no spans")
		return
	}
	start, end := t.Window()
	total := end - start
	fmt.Fprintf(w, "%d spans from %d processes (%s)",
		t.Count, len(t.Services), strings.Join(t.Services, ", "))
	if len(t.Traces) > 1 {
		fmt.Fprintf(w, ", %d traces", len(t.Traces))
	}
	fmt.Fprintf(w, ", total %s\n", fmtMS(total))

	svcWidth := len("process")
	for _, s := range t.Services {
		if len(s) > svcWidth {
			svcWidth = len(s)
		}
	}
	fmt.Fprintf(w, "%12s %13s  [%-*s] %-*s span\n",
		"offset", "duration", barWidth, "timeline", svcWidth, "process")
	var rec func(n *Node, depth int, prevTrace *string)
	rec = func(n *Node, depth int, prevTrace *string) {
		if *prevTrace != n.TraceID {
			*prevTrace = n.TraceID
			if len(t.Traces) > 1 {
				fmt.Fprintf(w, "— trace %s\n", n.TraceID)
			}
		}
		fmt.Fprintf(w, "%12s %13s  [%s] %-*s %s%s%s\n",
			fmtMS(n.StartUNS-start), "+"+fmtMS(n.DurNS),
			bar(n.StartUNS-start, n.DurNS, total),
			svcWidth, n.Service,
			strings.Repeat("· ", depth), n.Name, annotations(n.Record))
		for _, c := range n.Children {
			rec(c, depth+1, prevTrace)
		}
	}
	prev := ""
	for _, r := range t.Roots {
		rec(r, 0, &prev)
	}
}

// annotations renders a record's attributes (sorted) and link.
func annotations(r Record) string {
	var b strings.Builder
	keys := make([]string, 0, len(r.Attrs))
	for k := range r.Attrs { // mmtvet:ok — sorted below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%s", k, r.Attrs[k])
	}
	if r.LinkSpan != "" {
		fmt.Fprintf(&b, " link=%s@%s", r.LinkSpan, r.LinkTrace)
	}
	return b.String()
}

// bar renders a span's position within the trace window.
func bar(off, dur, total int64) string {
	b := []byte(strings.Repeat(" ", barWidth))
	if total <= 0 {
		b[0] = '#'
		return string(b)
	}
	lo := int(off * barWidth / total)
	hi := int((off + dur) * barWidth / total)
	if lo >= barWidth {
		lo = barWidth - 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	if hi > barWidth {
		hi = barWidth
	}
	for i := lo; i < hi; i++ {
		b[i] = '#'
	}
	return string(b)
}

// fmtMS renders nanoseconds as milliseconds.
func fmtMS(ns int64) string { return fmt.Sprintf("%.3fms", float64(ns)/1e6) }
