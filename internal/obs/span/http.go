package span

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
)

// maxSpansBody bounds one /v1/spans response on the wire.
const maxSpansBody = 16 << 20

// SpansResponse is the GET /v1/spans?trace=... body: one process's spans
// for one trace.
type SpansResponse struct {
	Service string   `json:"service"`
	Dropped uint64   `json:"dropped,omitempty"`
	Spans   []Record `json:"spans"`
}

// TraceSummary is one trace as summarized by a single process's ring.
type TraceSummary struct {
	TraceID  string  `json:"trace_id"`
	Root     string  `json:"root"` // name of the locally rootmost span
	Spans    int     `json:"spans"`
	StartUNS int64   `json:"start_uns"`
	DurMS    float64 `json:"dur_ms"` // earliest start to latest end, locally
}

// TracesResponse is the GET /v1/spans body without a trace filter: recent
// trace summaries, newest first.
type TracesResponse struct {
	Service string         `json:"service"`
	Dropped uint64         `json:"dropped,omitempty"`
	Traces  []TraceSummary `json:"traces"`
}

// Traces summarizes the ring's traces, newest first, at most limit
// (<= 0 means 20).
func (t *Tracer) Traces(limit int) []TraceSummary {
	if limit <= 0 {
		limit = 20
	}
	byTrace := make(map[string][]Record)
	for _, r := range t.Records("") {
		byTrace[r.TraceID] = append(byTrace[r.TraceID], r)
	}
	out := make([]TraceSummary, 0, len(byTrace))
	for id, recs := range byTrace { // mmtvet:ok — sorted below
		out = append(out, summarize(id, recs))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].StartUNS != out[j].StartUNS {
			return out[i].StartUNS > out[j].StartUNS
		}
		return out[i].TraceID < out[j].TraceID
	})
	if len(out) > limit {
		out = out[:limit]
	}
	return out
}

// summarize folds one trace's local records into a summary: the span
// whose parent is absent from the set (earliest such on ties) names the
// trace; the window runs earliest start to latest end.
func summarize(id string, recs []Record) TraceSummary {
	present := make(map[string]bool, len(recs))
	for _, r := range recs {
		present[r.SpanID] = true
	}
	s := TraceSummary{TraceID: id, Spans: len(recs)}
	var end int64
	for _, r := range recs {
		if s.StartUNS == 0 || r.StartUNS < s.StartUNS {
			s.StartUNS = r.StartUNS
		}
		if e := r.EndUNS(); e > end {
			end = e
		}
		if r.ParentID == "" || !present[r.ParentID] {
			if s.Root == "" || r.StartUNS <= s.StartUNS {
				s.Root = r.Name
			}
		}
	}
	if s.Root == "" && len(recs) > 0 {
		s.Root = recs[0].Name
	}
	s.DurMS = float64(end-s.StartUNS) / 1e6
	return s
}

// ServeHTTP serves the span ring: with ?trace=<id> the matching spans,
// without it recent trace summaries (?limit=N, default 20).
func (t *Tracer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if trace := r.URL.Query().Get("trace"); trace != "" {
		enc.Encode(SpansResponse{ //nolint:errcheck // client went away; nothing to do
			Service: t.Service(),
			Dropped: t.Dropped(),
			Spans:   t.Records(trace),
		})
		return
	}
	limit, _ := strconv.Atoi(r.URL.Query().Get("limit"))
	enc.Encode(TracesResponse{ //nolint:errcheck
		Service: t.Service(),
		Dropped: t.Dropped(),
		Traces:  t.Traces(limit),
	})
}

// FetchSpans GETs one process's spans for a trace from its /v1/spans
// endpoint. base is the process base URL (e.g. "http://127.0.0.1:8391").
func FetchSpans(ctx context.Context, hc *http.Client, base, traceID string) (SpansResponse, error) {
	var sr SpansResponse
	err := fetchJSON(ctx, hc, strings.TrimRight(base, "/")+"/v1/spans?trace="+url.QueryEscape(traceID), &sr)
	return sr, err
}

// FetchTraces GETs one process's recent trace summaries.
func FetchTraces(ctx context.Context, hc *http.Client, base string, limit int) (TracesResponse, error) {
	var tr TracesResponse
	url := strings.TrimRight(base, "/") + "/v1/spans"
	if limit > 0 {
		url += "?limit=" + strconv.Itoa(limit)
	}
	err := fetchJSON(ctx, hc, url, &tr)
	return tr, err
}

func fetchJSON(ctx context.Context, hc *http.Client, url string, out any) error {
	if hc == nil {
		hc = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("span: GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(io.LimitReader(resp.Body, maxSpansBody)).Decode(out)
}
