// Package obs is the observability layer shared by the simulator core and
// the experiment runner: typed discrete events (divergences, remerges,
// catchup episodes, rollbacks, job executions, ...), periodic samples of
// machine occupancy, and a small metrics registry with a Prometheus-style
// text endpoint.
//
// Producers hold a Recorder and guard every emission with a nil check, so
// a run with observability disabled pays one pointer compare per site and
// allocates nothing. Three sinks ship with the package: a JSONL event log
// (JSONLSink), a Chrome trace-event exporter that opens directly in
// Perfetto or chrome://tracing (ChromeTraceSink), and the live /metrics
// endpoint (Registry + Serve).
package obs

import (
	"fmt"
	"io"
)

// EventKind classifies a discrete event. The simulator core emits the
// cycle-domain kinds; the runner emits the wall-clock kinds (EvJob and
// friends), with timestamps in microseconds since pool start.
type EventKind uint8

const (
	// EvDiverge: a fetch group split at a divergent control instruction.
	// PC is the branch; Arg is the number of resulting subgroups.
	EvDiverge EventKind = iota
	// EvRemerge: two fetch groups unified. PC is the common fetch PC
	// (0 when unknown); Arg is the merged group's member count.
	EvRemerge
	// EvCatchupStart: DETECT found a remerge point; a behind group began
	// catching up. PC is the matched taken-branch target.
	EvCatchupStart
	// EvCatchupAbort: a CATCHUP episode was abandoned (FHB false positive
	// or instruction-budget overrun). Arg is instructions fetched while
	// catching up.
	EvCatchupAbort
	// EvRollback: an LVIP (or shared-load) value mispredict rolled the
	// affected threads back. PC is the load; Arg is the thread count.
	EvRollback
	// EvSquash: uops were squashed by a rollback. Arg is the uop count.
	EvSquash
	// EvMispredict: a branch left the front end's followed path. PC is
	// the control instruction.
	EvMispredict
	// EvFetchMode: the live-group fetch-mode mix changed. Arg packs the
	// per-mode group counts (PackModeMix/UnpackModeMix).
	EvFetchMode
	// EvStall: the dominant backpressure cause changed. Arg is a
	// StallCause.
	EvStall
	// EvJob: the runner executed one job. Name is the job label, Track
	// the worker, Dur the wall-clock duration; Arg counts extra attempts.
	EvJob
	// EvJobRetry: one failed attempt was retried. Name is the job label.
	EvJobRetry
	// EvCacheHit: a job was served from the persistent result cache.
	EvCacheHit
	// EvCounter: a generic named counter sample (Name, Arg = value);
	// rendered as a counter track by the Chrome exporter.
	EvCounter

	numEventKinds // internal bound for validation
)

var eventKindNames = [numEventKinds]string{
	EvDiverge:      "diverge",
	EvRemerge:      "remerge",
	EvCatchupStart: "catchup-start",
	EvCatchupAbort: "catchup-abort",
	EvRollback:     "rollback",
	EvSquash:       "squash",
	EvMispredict:   "mispredict",
	EvFetchMode:    "fetch-mode",
	EvStall:        "stall",
	EvJob:          "job",
	EvJobRetry:     "job-retry",
	EvCacheHit:     "cache-hit",
	EvCounter:      "counter",
}

func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("kind-%d", uint8(k))
}

// MarshalText renders the kind as its stable name, so JSONL logs stay
// grep-able and survive kind renumbering.
func (k EventKind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText parses a kind name written by MarshalText.
func (k *EventKind) UnmarshalText(b []byte) error {
	s := string(b)
	for i, n := range eventKindNames {
		if n == s {
			*k = EventKind(i)
			return nil
		}
	}
	return fmt.Errorf("obs: unknown event kind %q", s)
}

// TrackMachine is the Track value for machine-wide events not attributable
// to one hardware thread or worker.
const TrackMachine int32 = -1

// Event is one discrete occurrence. TS is in the producer's time domain:
// cycles for the simulator core, microseconds since pool start for the
// runner. Track identifies the hardware thread or worker (TrackMachine for
// machine-wide events). Dur, when non-zero, makes the event a span of that
// many TS units starting at TS; otherwise it is an instant.
type Event struct {
	TS    uint64    `json:"ts"`
	Kind  EventKind `json:"kind"`
	Track int32     `json:"track"`
	PC    uint64    `json:"pc,omitempty"`
	Arg   uint64    `json:"arg,omitempty"`
	Dur   uint64    `json:"dur,omitempty"`
	Name  string    `json:"name,omitempty"`
	// Trace is the job-scoped correlation id (serve mints one per job and
	// the runner stamps it on the job's events), so one job's events are
	// filterable in a shared sink — e.g. a Perfetto trace of a busy
	// server. Empty for events not tied to a job.
	Trace string `json:"trace,omitempty"`
}

// Label returns the event's display name: Name when set, else the kind.
func (e Event) Label() string {
	if e.Name != "" {
		return e.Name
	}
	return e.Kind.String()
}

// Sample is a periodic snapshot of the simulated machine, taken every
// -sample-every cycles. Committed and the Fetched* counters are cumulative;
// consumers diff successive samples for interval rates (IPC, fetch-mode
// mix per interval).
type Sample struct {
	TS        uint64 `json:"ts"`
	Committed uint64 `json:"committed"`

	// Structure occupancies at sample time.
	FetchQ int `json:"fetchq"`
	ROB    int `json:"rob"`
	IQ     int `json:"iq"`
	LSQ    int `json:"lsq"`

	// Live fetch groups by mode at sample time.
	GroupsMerge   int `json:"groups_merge"`
	GroupsDetect  int `json:"groups_detect"`
	GroupsCatchup int `json:"groups_catchup"`

	// Cumulative per-thread instructions fetched by mode.
	FetchedMerge   uint64 `json:"fetched_merge"`
	FetchedDetect  uint64 `json:"fetched_detect"`
	FetchedCatchup uint64 `json:"fetched_catchup"`
}

// Recorder receives the event stream. Implementations must tolerate
// concurrent calls when attached to a concurrent producer (the runner);
// the simulator core is single-threaded. Producers keep a nil Recorder
// when observability is off and skip every call.
type Recorder interface {
	Event(e Event)
	Sample(s Sample)
	// Close flushes and finalizes the sink. The producer that opened the
	// sink closes it; recorders shared between producers are closed once
	// by their owner.
	Close() error
}

// StallCause identifies the structure whose backpressure stalled the
// front end (EvStall's Arg).
type StallCause uint8

const (
	StallNone StallCause = iota
	StallFetchQ
	StallROB
	StallIQ
	StallLSQ
)

func (s StallCause) String() string {
	switch s {
	case StallNone:
		return "none"
	case StallFetchQ:
		return "fetchq-full"
	case StallROB:
		return "rob-full"
	case StallIQ:
		return "iq-full"
	case StallLSQ:
		return "lsq-full"
	}
	return "?"
}

// PackModeMix folds per-mode live-group counts into an EvFetchMode Arg.
func PackModeMix(merge, detect, catchup int) uint64 {
	return uint64(uint16(merge)) | uint64(uint16(detect))<<16 | uint64(uint16(catchup))<<32
}

// UnpackModeMix inverts PackModeMix.
func UnpackModeMix(arg uint64) (merge, detect, catchup int) {
	return int(uint16(arg)), int(uint16(arg >> 16)), int(uint16(arg >> 32))
}

// Multi fans the stream out to several sinks. Close closes each sink and
// returns the first error.
func Multi(sinks ...Recorder) Recorder {
	switch len(sinks) {
	case 0:
		return nil
	case 1:
		return sinks[0]
	}
	return multiSink(sinks)
}

type multiSink []Recorder

func (m multiSink) Event(e Event) {
	for _, s := range m {
		s.Event(e)
	}
}

func (m multiSink) Sample(s Sample) {
	for _, r := range m {
		r.Sample(s)
	}
}

func (m multiSink) Close() error {
	var first error
	for _, s := range m {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Collector is an in-memory Recorder for single-threaded producers (the
// pipeline tracer, tests): it accumulates events and samples for the
// caller to drain. It is not safe for concurrent use.
type Collector struct {
	Events  []Event
	Samples []Sample
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Event appends to the event buffer.
func (c *Collector) Event(e Event) { c.Events = append(c.Events, e) }

// Sample appends to the sample buffer.
func (c *Collector) Sample(s Sample) { c.Samples = append(c.Samples, s) }

// Close is a no-op.
func (c *Collector) Close() error { return nil }

// Drain returns the buffered events and resets the buffer, reusing its
// backing array.
func (c *Collector) Drain() []Event {
	out := c.Events
	c.Events = c.Events[len(c.Events):]
	return out
}

// errWriter tracks write errors so streaming sinks can surface the
// first failure at Close instead of silently truncating.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	n, err := e.w.Write(p)
	if err != nil {
		e.err = err
	}
	return n, err
}
