package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Line is one JSONL record: exactly one of Meta, Event or Sample is set,
// tagged by Type ("meta", "event", "sample").
type Line struct {
	Type   string            `json:"type"`
	Meta   map[string]string `json:"meta,omitempty"`
	Event  *Event            `json:"event,omitempty"`
	Sample *Sample           `json:"sample,omitempty"`
}

// JSONLSink streams the event stream as one JSON object per line. It is
// safe for concurrent use.
type JSONLSink struct {
	mu  sync.Mutex
	ew  *errWriter
	buf *bufio.Writer
	enc *json.Encoder
}

// NewJSONL returns a sink writing to w. meta, when non-nil, is written as
// the first line, so logs carry the producing build and run identity. The
// caller owns w; Close flushes but does not close it.
func NewJSONL(w io.Writer, meta map[string]string) *JSONLSink {
	ew := &errWriter{w: w}
	buf := bufio.NewWriter(ew)
	s := &JSONLSink{ew: ew, buf: buf, enc: json.NewEncoder(buf)}
	if meta != nil {
		s.enc.Encode(Line{Type: "meta", Meta: meta}) //nolint:errcheck // surfaced at Close via errWriter
	}
	return s
}

// Event writes one event line.
func (s *JSONLSink) Event(e Event) {
	s.mu.Lock()
	s.enc.Encode(Line{Type: "event", Event: &e}) //nolint:errcheck
	s.mu.Unlock()
}

// Sample writes one sample line.
func (s *JSONLSink) Sample(sm Sample) {
	s.mu.Lock()
	s.enc.Encode(Line{Type: "sample", Sample: &sm}) //nolint:errcheck
	s.mu.Unlock()
}

// Close flushes the buffer and reports the first write error.
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.buf.Flush(); err != nil {
		return err
	}
	return s.ew.err
}

// DecodeJSONL reads back a log written by JSONLSink. It returns the
// records in order and fails on the first malformed line.
func DecodeJSONL(r io.Reader) ([]Line, error) {
	dec := json.NewDecoder(r)
	var out []Line
	for {
		var l Line
		if err := dec.Decode(&l); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("obs: jsonl line %d: %w", len(out)+1, err)
		}
		out = append(out, l)
	}
}
