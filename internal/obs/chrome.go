package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// ChromeTraceConfig configures the trace-event exporter.
type ChromeTraceConfig struct {
	// Process is the process_name shown in the viewer (e.g. "mmtsim core",
	// "mmtbench runner").
	Process string
	// TrackPrefix names per-track rows: "<prefix> <n>" ("thread 0",
	// "worker 3"). Default "track".
	TrackPrefix string
	// Meta is attached as the file's otherData: build version, app,
	// preset — whatever makes the trace attributable.
	Meta map[string]string
}

// ChromeTraceSink streams the event stream in Chrome trace-event JSON
// (the "JSON Object Format"), so a run opens directly in Perfetto or
// chrome://tracing: one track per hardware thread (or runner worker), a
// machine track for global events, counter tracks for the fetch-mode mix
// and the sampled occupancies, and span events for runner jobs.
// Timestamps map 1:1 from the producer's domain (cycles or µs) onto the
// format's µs field. It is safe for concurrent use.
type ChromeTraceSink struct {
	cfg ChromeTraceConfig

	mu     sync.Mutex
	ew     *errWriter
	buf    *bufio.Writer
	first  bool
	closed bool
	tracks map[int32]bool
	prev   *Sample // previous sample, for interval rates
}

// chromeRecord is one element of the traceEvents array.
type chromeRecord struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    uint64         `json:"ts"`
	Dur   uint64         `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int64          `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// NewChromeTrace returns a sink writing to w. The caller owns w; Close
// finalizes the JSON document and flushes but does not close it.
func NewChromeTrace(w io.Writer, cfg ChromeTraceConfig) *ChromeTraceSink {
	if cfg.Process == "" {
		cfg.Process = "mmt"
	}
	if cfg.TrackPrefix == "" {
		cfg.TrackPrefix = "track"
	}
	ew := &errWriter{w: w}
	s := &ChromeTraceSink{
		cfg:    cfg,
		ew:     ew,
		buf:    bufio.NewWriter(ew),
		first:  true,
		tracks: make(map[int32]bool),
	}
	s.buf.WriteString("{\"traceEvents\":[") //nolint:errcheck // surfaced at Close via errWriter
	s.record(chromeRecord{Name: "process_name", Phase: "M",
		Args: map[string]any{"name": cfg.Process}})
	return s
}

// tid maps a producer track onto a viewer thread id: the machine track is
// tid 0, hardware thread / worker n is tid n+1.
func tid(track int32) int64 {
	if track == TrackMachine {
		return 0
	}
	return int64(track) + 1
}

// record appends one element to the traceEvents array (s.mu held, except
// from the constructor).
func (s *ChromeTraceSink) record(r chromeRecord) {
	if s.first {
		s.first = false
	} else {
		s.buf.WriteByte(',') //nolint:errcheck
	}
	b, err := json.Marshal(r)
	if err != nil {
		// chromeRecord marshals unconditionally; args hold only scalars.
		panic(fmt.Sprintf("obs: marshaling trace record: %v", err))
	}
	s.buf.Write(b) //nolint:errcheck
}

// ensureTrack emits the thread_name metadata for a track on first use.
func (s *ChromeTraceSink) ensureTrack(track int32) {
	if s.tracks[track] {
		return
	}
	s.tracks[track] = true
	name := "machine"
	if track != TrackMachine {
		name = fmt.Sprintf("%s %d", s.cfg.TrackPrefix, track)
	}
	s.record(chromeRecord{Name: "thread_name", Phase: "M", TID: tid(track),
		Args: map[string]any{"name": name}})
	s.record(chromeRecord{Name: "thread_sort_index", Phase: "M", TID: tid(track),
		Args: map[string]any{"sort_index": tid(track)}})
}

// NameTrack assigns an explicit viewer name to a track, overriding the
// "<prefix> <n>" default — mmttrace uses one named track per fleet
// process. Calls after the track's first event (or Close) are dropped.
func (s *ChromeTraceSink) NameTrack(track int32, name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.tracks[track] {
		return
	}
	s.tracks[track] = true
	s.record(chromeRecord{Name: "thread_name", Phase: "M", TID: tid(track),
		Args: map[string]any{"name": name}})
	s.record(chromeRecord{Name: "thread_sort_index", Phase: "M", TID: tid(track),
		Args: map[string]any{"sort_index": tid(track)}})
}

// Span appends an arbitrary named complete event to a track — mmttrace
// renders stitched fleet spans through this, one track per process. ts
// and dur are in the file's µs domain.
func (s *ChromeTraceSink) Span(track int32, name string, ts, dur uint64, args map[string]any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.ensureTrack(track)
	s.record(chromeRecord{Name: name, Phase: "X", TS: ts, Dur: dur,
		TID: tid(track), Args: args})
}

// Event renders one event: counters for EvFetchMode/EvCounter, spans for
// durations, thread-scoped instants otherwise.
func (s *ChromeTraceSink) Event(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	switch {
	case e.Kind == EvFetchMode:
		m, d, c := UnpackModeMix(e.Arg)
		s.record(chromeRecord{Name: "fetch groups", Phase: "C", TS: e.TS,
			Args: map[string]any{"merge": m, "detect": d, "catchup": c}})
	case e.Kind == EvCounter:
		s.record(chromeRecord{Name: e.Label(), Phase: "C", TS: e.TS,
			Args: map[string]any{"value": e.Arg}})
	case e.Dur > 0:
		s.ensureTrack(e.Track)
		s.record(chromeRecord{Name: e.Label(), Phase: "X", TS: e.TS, Dur: e.Dur,
			TID: tid(e.Track), Args: s.eventArgs(e)})
	default:
		s.ensureTrack(e.Track)
		name := e.Label()
		if e.Kind == EvStall {
			name = "stall: " + StallCause(e.Arg).String()
		}
		s.record(chromeRecord{Name: name, Phase: "i", TS: e.TS,
			TID: tid(e.Track), Scope: "t", Args: s.eventArgs(e)})
	}
}

// eventArgs builds the args payload shown in the viewer's detail pane.
func (s *ChromeTraceSink) eventArgs(e Event) map[string]any {
	args := map[string]any{}
	if e.PC != 0 {
		args["pc"] = fmt.Sprintf("%#x", e.PC)
	}
	if e.Arg != 0 && e.Kind != EvStall {
		args["arg"] = e.Arg
	}
	if e.Trace != "" {
		args["trace"] = e.Trace
	}
	if len(args) == 0 {
		return nil
	}
	return args
}

// Sample renders occupancy and rate counter tracks from one cycle sample.
func (s *ChromeTraceSink) Sample(sm Sample) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.record(chromeRecord{Name: "occupancy", Phase: "C", TS: sm.TS,
		Args: map[string]any{"fetchq": sm.FetchQ, "rob": sm.ROB, "iq": sm.IQ, "lsq": sm.LSQ}})
	s.record(chromeRecord{Name: "fetch groups", Phase: "C", TS: sm.TS,
		Args: map[string]any{"merge": sm.GroupsMerge, "detect": sm.GroupsDetect, "catchup": sm.GroupsCatchup}})
	if s.prev != nil && sm.TS > s.prev.TS {
		dt := float64(sm.TS - s.prev.TS)
		s.record(chromeRecord{Name: "ipc", Phase: "C", TS: sm.TS,
			Args: map[string]any{"ipc": float64(sm.Committed-s.prev.Committed) / dt}})
		s.record(chromeRecord{Name: "fetched per mode (interval)", Phase: "C", TS: sm.TS,
			Args: map[string]any{
				"merge":   sm.FetchedMerge - s.prev.FetchedMerge,
				"detect":  sm.FetchedDetect - s.prev.FetchedDetect,
				"catchup": sm.FetchedCatchup - s.prev.FetchedCatchup,
			}})
	}
	prev := sm
	s.prev = &prev
}

// Close finalizes the JSON document (closing the traceEvents array and
// attaching otherData) and reports the first write error. Further Event
// and Sample calls after Close are dropped.
func (s *ChromeTraceSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.ew.err
	}
	s.closed = true
	s.buf.WriteString("],\"displayTimeUnit\":\"ms\"") //nolint:errcheck
	if len(s.cfg.Meta) > 0 {
		b, err := json.Marshal(s.cfg.Meta)
		if err == nil {
			s.buf.WriteString(",\"otherData\":") //nolint:errcheck
			s.buf.Write(b)                       //nolint:errcheck
		}
	}
	s.buf.WriteByte('}') //nolint:errcheck
	if err := s.buf.Flush(); err != nil {
		return err
	}
	return s.ew.err
}
