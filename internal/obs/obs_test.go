package obs

import (
	"bytes"
	"reflect"
	"testing"
)

func TestEventKindTextRoundTrip(t *testing.T) {
	for k := EventKind(0); int(k) < len(eventKindNames); k++ {
		b, err := k.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back EventKind
		if err := back.UnmarshalText(b); err != nil {
			t.Fatalf("%s: %v", b, err)
		}
		if back != k {
			t.Errorf("%s round-tripped to %s", k, back)
		}
	}
	var k EventKind
	if err := k.UnmarshalText([]byte("nope")); err == nil {
		t.Error("unknown kind accepted")
	}
	if s := EventKind(250).String(); s == "" {
		t.Error("out-of-range kind produced empty string")
	}
}

func TestPackModeMix(t *testing.T) {
	cases := [][3]int{{0, 0, 0}, {1, 0, 0}, {2, 1, 1}, {4, 0, 3}, {65535, 65535, 65535}}
	for _, c := range cases {
		m, d, cu := UnpackModeMix(PackModeMix(c[0], c[1], c[2]))
		if m != c[0] || d != c[1] || cu != c[2] {
			t.Errorf("pack/unpack %v = %d,%d,%d", c, m, d, cu)
		}
	}
}

func TestStallCauseStrings(t *testing.T) {
	for c := StallNone; c <= StallLSQ; c++ {
		if c.String() == "" {
			t.Errorf("cause %d has no name", c)
		}
	}
}

func TestMultiFansOut(t *testing.T) {
	a, b := NewCollector(), NewCollector()
	m := Multi(a, b)
	m.Event(Event{TS: 1, Kind: EvDiverge})
	m.Sample(Sample{TS: 2})
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	for i, c := range []*Collector{a, b} {
		if len(c.Events) != 1 || len(c.Samples) != 1 {
			t.Errorf("sink %d: %d events %d samples", i, len(c.Events), len(c.Samples))
		}
	}
}

func TestCollectorDrain(t *testing.T) {
	c := NewCollector()
	c.Event(Event{TS: 1})
	c.Event(Event{TS: 2})
	if got := c.Drain(); len(got) != 2 {
		t.Fatalf("drained %d events", len(got))
	}
	if got := c.Drain(); len(got) != 0 {
		t.Fatalf("second drain returned %d events", len(got))
	}
	c.Event(Event{TS: 3})
	if got := c.Drain(); len(got) != 1 || got[0].TS != 3 {
		t.Fatalf("drain after refill: %+v", got)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	meta := map[string]string{"app": "equake", "version": "test"}
	s := NewJSONL(&buf, meta)
	events := []Event{
		{TS: 10, Kind: EvDiverge, Track: 0, PC: 0x104c, Arg: 2},
		{TS: 20, Kind: EvStall, Track: TrackMachine, Arg: uint64(StallROB)},
		{TS: 30, Kind: EvJob, Track: 1, Dur: 1500, Name: "ammp/Base/2T"},
	}
	samples := []Sample{{TS: 100, Committed: 400, ROB: 12, GroupsMerge: 1}}
	for _, e := range events {
		s.Event(e)
	}
	for _, sm := range samples {
		s.Sample(sm)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	lines, err := DecodeJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 1+len(events)+len(samples) {
		t.Fatalf("decoded %d lines", len(lines))
	}
	if lines[0].Type != "meta" || !reflect.DeepEqual(lines[0].Meta, meta) {
		t.Errorf("meta line: %+v", lines[0])
	}
	for i, e := range events {
		l := lines[1+i]
		if l.Type != "event" || l.Event == nil || !reflect.DeepEqual(*l.Event, e) {
			t.Errorf("event %d: %+v", i, l)
		}
	}
	last := lines[len(lines)-1]
	if last.Type != "sample" || last.Sample == nil || !reflect.DeepEqual(*last.Sample, samples[0]) {
		t.Errorf("sample line: %+v", last)
	}
}

func TestJSONLDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeJSONL(bytes.NewBufferString("{\"type\":\"event\"}\nnot json\n")); err == nil {
		t.Error("garbage line accepted")
	}
}
