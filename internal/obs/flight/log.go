package flight

import (
	"context"
	"log/slog"
	"strings"
)

// logHandler tees structured log lines into the flight ring before
// delegating to the real handler, so the dump interleaves what the
// process *said* with what it *did*. The captured line is the message
// plus key=val attrs rendered flat; the "trace" attr (the convention all
// daemons already follow for request-scoped lines) additionally lands in
// the entry's Trace slot, so a dump greps by correlation id.
type logHandler struct {
	inner slog.Handler
	rec   *Recorder
	// attrs are the handler-level attrs accumulated via WithAttrs,
	// pre-rendered; trace is the trace id found among them, if any.
	attrs string
	trace string
}

// NewLogHandler wraps inner so every record also lands in rec's ring.
// Log capture is off the hot path (a log line already allocates to
// render), so this path favors fidelity over zero-alloc.
func NewLogHandler(inner slog.Handler, rec *Recorder) slog.Handler {
	return &logHandler{inner: inner, rec: rec}
}

func (h *logHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

func (h *logHandler) Handle(ctx context.Context, r slog.Record) error {
	var sb strings.Builder
	sb.WriteString(r.Message)
	sb.WriteString(h.attrs)
	trace := h.trace
	r.Attrs(func(a slog.Attr) bool {
		sb.WriteByte(' ')
		sb.WriteString(a.Key)
		sb.WriteByte('=')
		sb.WriteString(a.Value.String())
		if a.Key == "trace" {
			trace = a.Value.String()
		}
		return true
	})
	h.rec.Log(int(r.Level), sb.String(), trace)
	return h.inner.Handle(ctx, r)
}

func (h *logHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	var sb strings.Builder
	sb.WriteString(h.attrs)
	trace := h.trace
	for _, a := range attrs {
		sb.WriteByte(' ')
		sb.WriteString(a.Key)
		sb.WriteByte('=')
		sb.WriteString(a.Value.String())
		if a.Key == "trace" {
			trace = a.Value.String()
		}
	}
	return &logHandler{inner: h.inner.WithAttrs(attrs), rec: h.rec, attrs: sb.String(), trace: trace}
}

func (h *logHandler) WithGroup(name string) slog.Handler {
	return &logHandler{inner: h.inner.WithGroup(name), rec: h.rec, attrs: h.attrs, trace: h.trace}
}
