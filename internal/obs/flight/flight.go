// Package flight is the fleet's black-box recorder: an always-on, bounded,
// allocation-free-on-the-hot-path ring of the most recent observability
// entries in one process — typed obs events and machine samples, finished
// span references, structured log lines, job admission/completion edges,
// and captured panics. When a node stalls or dies *after the fact*, the
// ring is the replay: it is served live at GET /v1/debug/flight, dumped to
// disk on SIGQUIT or a captured worker panic, and rendered offline by
// `mmtdoctor -from-dump`.
//
// The recorder implements obs.Recorder, so it fans into the existing
// nil-safe Recorder seams (the runner pool's job timeline, the simulator
// core's event/sample hooks) via obs.Multi without any producer changes.
// Recording copies fixed-size values into a preallocated slot under a
// mutex: no allocation, no I/O, no encoding — the ring costs the hot path
// one lock and a struct copy. Every method on a nil *Recorder is a no-op.
package flight

import (
	"os"
	"sync"
	"time"

	"mmt/internal/obs"
)

// Kind classifies one ring entry.
type Kind uint8

const (
	// KindMark is a free-form annotation (process start, config reload,
	// route decisions, cache rejections).
	KindMark Kind = iota
	// KindEvent is an obs.Event from a Recorder seam (runner job timeline,
	// simulator core events). TS/Track/PC/Arg/Dur carry the event payload
	// in the producer's time domain.
	KindEvent
	// KindSample is an obs.Sample: TS is the cycle stamp, Arg the
	// cumulative committed-instruction count, Track the ROB occupancy.
	KindSample
	// KindSpan is a finished distributed span reference: Name is the span
	// name, Trace its trace id, UNS its start, Dur its duration in ns.
	KindSpan
	// KindLog is a structured log line: Name holds the rendered message,
	// Arg the slog level + 8 (so debug=-4 fits an unsigned slot).
	KindLog
	// KindAdmit is a serving-layer job admission edge: Name the job id,
	// Err the admission verdict ("queued", "dedup", "rejected", ...).
	KindAdmit
	// KindComplete is a job completion edge: Name the job id, Dur the
	// job's latency in ns, Err its error (empty on success).
	KindComplete
	// KindPanic is a captured worker panic: Name the job name, Err the
	// panic value, Trace the job's correlation id, PC unused.
	KindPanic

	numKinds // internal bound
)

var kindNames = [numKinds]string{
	KindMark:     "mark",
	KindEvent:    "event",
	KindSample:   "sample",
	KindSpan:     "span",
	KindLog:      "log",
	KindAdmit:    "admit",
	KindComplete: "complete",
	KindPanic:    "panic",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "kind-?"
}

// MarshalText renders the kind as its stable name so dumps stay grep-able.
func (k Kind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText parses a kind name written by MarshalText.
func (k *Kind) UnmarshalText(b []byte) error {
	s := string(b)
	for i, n := range kindNames {
		if n == s {
			*k = Kind(i)
			return nil
		}
	}
	// Tolerate dumps from newer builds: unknown kinds render as kind-?.
	*k = numKinds
	return nil
}

// Entry is one ring slot. All fields are fixed-size values (string headers
// included), so recording one is a struct copy into preallocated storage.
// Field meaning varies by Kind; unused slots stay zero and are omitted
// from dumps.
type Entry struct {
	Seq   uint64 `json:"seq"`
	UNS   int64  `json:"uns"` // wall clock at record time, unix nanoseconds
	Kind  Kind   `json:"kind"`
	Name  string `json:"name,omitempty"`
	Trace string `json:"trace,omitempty"`
	Track int32  `json:"track,omitempty"`
	TS    uint64 `json:"ts,omitempty"`
	PC    uint64 `json:"pc,omitempty"`
	Arg   uint64 `json:"arg,omitempty"`
	Dur   uint64 `json:"dur,omitempty"`
	Err   string `json:"err,omitempty"`
}

// DefaultCapacity is the ring's default slot count.
const DefaultCapacity = 4096

// Recorder is the bounded flight ring for one process. A nil *Recorder is
// valid and records nothing, so wiring sites need no guards. It implements
// obs.Recorder for the existing hook seams and http.Handler for the
// GET /v1/debug/flight endpoint.
type Recorder struct {
	service string

	mu      sync.Mutex
	buf     []Entry // preallocated to capacity; len grows to cap then stays
	next    int     // overwrite cursor once full
	seq     uint64
	dropped uint64
}

// compile-time check: the ring slots straight into the obs seams.
var _ obs.Recorder = (*Recorder)(nil)

// New returns a ring for the given service label ("mmtserved@host:port").
// capacity <= 0 selects DefaultCapacity.
func New(service string, capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{service: service, buf: make([]Entry, 0, capacity)}
}

// Service returns the ring's service label ("" on nil).
func (r *Recorder) Service() string {
	if r == nil {
		return ""
	}
	return r.service
}

// record stamps and stores one entry, overwriting the oldest once full.
func (r *Recorder) record(e Entry) {
	e.UNS = time.Now().UnixNano()
	r.mu.Lock()
	r.seq++
	e.Seq = r.seq
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
		r.next = (r.next + 1) % len(r.buf)
		r.dropped++
	}
	r.mu.Unlock()
}

// Event implements obs.Recorder: the runner's job timeline and the
// simulator core's typed events land here when the ring is fanned into
// their Trace seam.
func (r *Recorder) Event(e obs.Event) {
	if r == nil {
		return
	}
	r.record(Entry{Kind: KindEvent, Name: e.Name, Trace: e.Trace,
		Track: e.Track, TS: e.TS, PC: e.PC, Arg: e.Arg, Dur: e.Dur,
		Err: e.Kind.String()})
}

// Sample implements obs.Recorder: periodic machine-occupancy samples keep
// the ring's tail describing what the simulated machine was doing.
func (r *Recorder) Sample(s obs.Sample) {
	if r == nil {
		return
	}
	r.record(Entry{Kind: KindSample, TS: s.TS, Arg: s.Committed, Track: int32(s.ROB)})
}

// Close implements obs.Recorder. The ring holds no resources; the entries
// stay readable after Close so a post-shutdown dump still works.
func (r *Recorder) Close() error { return nil }

// Mark records a free-form annotation.
func (r *Recorder) Mark(name string) {
	if r == nil {
		return
	}
	r.record(Entry{Kind: KindMark, Name: name})
}

// MarkErr records an annotation carrying an error or verdict string.
func (r *Recorder) MarkErr(name, errText string) {
	if r == nil {
		return
	}
	r.record(Entry{Kind: KindMark, Name: name, Err: errText})
}

// Admit records a serving-layer admission edge: job is the job id,
// verdict how admission resolved ("queued", "dedup", "rejected",
// "expired", ...), trace the job's correlation id.
func (r *Recorder) Admit(job, verdict, trace string) {
	if r == nil {
		return
	}
	r.record(Entry{Kind: KindAdmit, Name: job, Err: verdict, Trace: trace})
}

// Complete records a job completion edge with its end-to-end latency and
// final error (empty on success).
func (r *Recorder) Complete(job, trace string, dur time.Duration, errText string) {
	if r == nil {
		return
	}
	r.record(Entry{Kind: KindComplete, Name: job, Trace: trace,
		Dur: uint64(dur.Nanoseconds()), Err: errText})
}

// SpanRef records a finished distributed span by reference (wired from
// span.Tracer's observer), so the ring interleaves span completions with
// events and log lines without holding attribute maps.
func (r *Recorder) SpanRef(name, trace string, startUNS, durNS int64) {
	if r == nil {
		return
	}
	r.record(Entry{Kind: KindSpan, Name: name, Trace: trace,
		TS: uint64(startUNS), Dur: uint64(durNS)})
}

// Log records a rendered structured-log line. level is the slog level
// value; it is offset by +8 into Arg so debug (-4) survives the unsigned
// slot.
func (r *Recorder) Log(level int, msg, trace string) {
	if r == nil {
		return
	}
	r.record(Entry{Kind: KindLog, Name: msg, Trace: trace, Arg: uint64(level + 8)})
}

// Panic records a captured worker panic: name labels the job, key is its
// content-addressed task key, trace its correlation id, v the panic value.
func (r *Recorder) Panic(name, key, trace, v string) {
	if r == nil {
		return
	}
	r.record(Entry{Kind: KindPanic, Name: name, Err: v, Trace: trace})
	// The key is recorded as its own mark so the dump names the exact
	// experiment to replay, however long the key string is.
	r.record(Entry{Kind: KindMark, Name: "panic task key: " + key, Trace: trace})
}

// Len returns how many entries the ring currently holds.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Dropped returns how many entries the ring has overwritten.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Entries returns the ring's contents oldest-first.
func (r *Recorder) Entries() []Entry {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Entry, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Snapshot assembles a Dump of the current ring state.
func (r *Recorder) Snapshot(reason string) Dump {
	d := Dump{
		Service:  r.Service(),
		Reason:   reason,
		PID:      os.Getpid(),
		TakenUNS: time.Now().UnixNano(),
		Dropped:  r.Dropped(),
		Entries:  r.Entries(),
	}
	return d
}
