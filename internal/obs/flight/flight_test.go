package flight

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"mmt/internal/obs"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Event(obs.Event{Kind: obs.EvJob})
	r.Sample(obs.Sample{TS: 1})
	r.Mark("x")
	r.MarkErr("x", "y")
	r.Admit("j", "queued", "t")
	r.Complete("j", "t", time.Second, "")
	r.SpanRef("s", "t", 1, 2)
	r.Log(0, "m", "t")
	r.Panic("n", "k", "t", "v")
	if r.Len() != 0 || r.Dropped() != 0 || r.Entries() != nil || r.Service() != "" {
		t.Error("nil recorder leaked state")
	}
}

// TestEvictionOrder pins the bounded-memory contract: the ring holds at
// most capacity entries, overwrites strictly oldest-first, and reports
// how many it dropped.
func TestEvictionOrder(t *testing.T) {
	const capacity = 8
	r := New("test", capacity)
	for i := 0; i < 3*capacity; i++ {
		r.Mark("m")
	}
	if got := r.Len(); got != capacity {
		t.Fatalf("Len = %d, want %d", got, capacity)
	}
	if got := r.Dropped(); got != 2*capacity {
		t.Errorf("Dropped = %d, want %d", got, 2*capacity)
	}
	es := r.Entries()
	if len(es) != capacity {
		t.Fatalf("Entries len = %d, want %d", len(es), capacity)
	}
	// The survivors are the newest `capacity` entries in emission order:
	// seq 17..24 for 24 emissions into 8 slots.
	for i, e := range es {
		want := uint64(2*capacity + i + 1)
		if e.Seq != want {
			t.Errorf("entry %d: seq = %d, want %d (eviction order broken)", i, e.Seq, want)
		}
	}
	// Wrap mid-ring: the rotation must still come out oldest-first.
	r.Mark("extra")
	es = r.Entries()
	for i := 1; i < len(es); i++ {
		if es[i].Seq != es[i-1].Seq+1 {
			t.Fatalf("entries not in seq order after wrap: %d then %d", es[i-1].Seq, es[i].Seq)
		}
	}
}

// TestRecordDoesNotAllocate pins the zero-alloc-on-the-hot-path contract
// for the obs.Recorder seam entry points.
func TestRecordDoesNotAllocate(t *testing.T) {
	r := New("test", 64)
	ev := obs.Event{TS: 5, Kind: obs.EvJob, Track: 2, Name: "job", Trace: "t-1", Dur: 9}
	if n := testing.AllocsPerRun(200, func() { r.Event(ev) }); n > 0 {
		t.Errorf("Event allocates %.1f times per call, want 0", n)
	}
	s := obs.Sample{TS: 100, Committed: 42, ROB: 7}
	if n := testing.AllocsPerRun(200, func() { r.Sample(s) }); n > 0 {
		t.Errorf("Sample allocates %.1f times per call, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() { r.Admit("j-1", "queued", "t-1") }); n > 0 {
		t.Errorf("Admit allocates %.1f times per call, want 0", n)
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := New("test", 128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Event(obs.Event{Kind: obs.EvJob, Name: "j"})
			}
		}()
	}
	wg.Wait()
	if got := r.Len(); got != 128 {
		t.Errorf("Len = %d, want 128", got)
	}
	if got := r.Dropped(); got != 8*500-128 {
		t.Errorf("Dropped = %d, want %d", got, 8*500-128)
	}
}

func TestDumpRoundTripAndRender(t *testing.T) {
	r := New("mmtserved@127.0.0.1:9", 32)
	r.Mark("boot")
	r.Event(obs.Event{TS: 7, Kind: obs.EvCacheHit, Track: 1, Name: "libsvm/base", Trace: "t-9"})
	r.Sample(obs.Sample{TS: 5000, Committed: 1234, ROB: 17})
	r.Admit("j-1", "queued", "t-9")
	r.Complete("j-1", "t-9", 1500*time.Microsecond, "")
	r.SpanRef("serve.exec", "t-9", time.Now().UnixNano(), int64(2*time.Millisecond))
	r.Log(0, "job submitted job=j-1", "t-9")
	r.Panic("libsvm/base", "deadbeef", "t-9", "boom")

	path := filepath.Join(t.TempDir(), "dump.json")
	if err := r.WriteDump(path, "test"); err != nil {
		t.Fatal(err)
	}
	d, err := ReadDump(path)
	if err != nil {
		t.Fatal(err)
	}
	if d.Service != "mmtserved@127.0.0.1:9" || d.Reason != "test" {
		t.Errorf("dump header = %+v", d)
	}
	if len(d.Entries) != 9 { // Panic records two entries (panic + key mark)
		t.Fatalf("entries = %d, want 9", len(d.Entries))
	}
	if p := d.Panics(); len(p) != 1 || p[0].Err != "boom" || p[0].Trace != "t-9" {
		t.Errorf("Panics() = %+v", p)
	}
	var keyed bool
	for _, e := range d.Entries {
		if e.Kind == KindMark && strings.Contains(e.Name, "deadbeef") {
			keyed = true
		}
	}
	if !keyed {
		t.Error("panic dump does not name the task key")
	}

	var buf bytes.Buffer
	d.Render(&buf)
	out := buf.String()
	for _, want := range []string{"mmtserved@127.0.0.1:9", "PANIC: boom", "t-9", "cache-hit", "cycle 5000", "j-1", "deadbeef"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered dump missing %q:\n%s", want, out)
		}
	}
}

func TestDumpPathSanitizesService(t *testing.T) {
	p := DumpPath("/tmp", "mmtserved@127.0.0.1:8377", 42)
	base := filepath.Base(p)
	if strings.ContainsAny(base, ":/") || !strings.Contains(base, "mmt-flight-") {
		t.Errorf("DumpPath = %q", p)
	}
}

func TestServeHTTP(t *testing.T) {
	r := New("svc", 16)
	r.Mark("hello")
	rr := httptest.NewRecorder()
	r.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/debug/flight", nil))
	if rr.Code != 200 {
		t.Fatalf("status %d", rr.Code)
	}
	var d Dump
	if err := json.Unmarshal(rr.Body.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
	if d.Service != "svc" || len(d.Entries) != 1 || d.Entries[0].Name != "hello" {
		t.Errorf("dump = %+v", d)
	}
}

func TestLogHandlerCapture(t *testing.T) {
	r := New("svc", 16)
	var sink bytes.Buffer
	logger := slog.New(NewLogHandler(slog.NewTextHandler(&sink, nil), r))

	logger.Info("job submitted", "job", "j-1", "trace", "t-42")
	logger.With("service", "mmtserved", "trace", "t-base").Warn("drain started")

	es := r.Entries()
	if len(es) != 2 {
		t.Fatalf("entries = %d, want 2", len(es))
	}
	if es[0].Kind != KindLog || es[0].Trace != "t-42" || !strings.Contains(es[0].Name, "job submitted") || !strings.Contains(es[0].Name, "job=j-1") {
		t.Errorf("entry 0 = %+v", es[0])
	}
	if es[1].Trace != "t-base" || !strings.Contains(es[1].Name, "drain started") || !strings.Contains(es[1].Name, "service=mmtserved") {
		t.Errorf("entry 1 = %+v", es[1])
	}
	if int(es[1].Arg)-8 != int(slog.LevelWarn) {
		t.Errorf("level = %d, want warn", int(es[1].Arg)-8)
	}
	// The inner handler still sees every line.
	if got := sink.String(); !strings.Contains(got, "job submitted") || !strings.Contains(got, "drain started") {
		t.Errorf("inner handler output missing lines:\n%s", got)
	}
}
