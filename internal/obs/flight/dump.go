package flight

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"
)

// DumpSchema versions the on-disk dump format.
const DumpSchema = 1

// Dump is a flight ring frozen at one instant: what the process's recent
// past looked like when it panicked, was SIGQUIT'd, or was scraped.
type Dump struct {
	Schema   int     `json:"schema"`
	Service  string  `json:"service"`
	Reason   string  `json:"reason"`
	PID      int     `json:"pid,omitempty"`
	TakenUNS int64   `json:"taken_uns"`
	Dropped  uint64  `json:"dropped"`
	Entries  []Entry `json:"entries"`
}

// WriteDump snapshots the ring and writes it as indented JSON to path.
func (r *Recorder) WriteDump(path, reason string) error {
	d := r.Snapshot(reason)
	d.Schema = DumpSchema
	b, err := json.MarshalIndent(d, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadDump loads a dump written by WriteDump.
func ReadDump(path string) (Dump, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Dump{}, err
	}
	var d Dump
	if err := json.Unmarshal(b, &d); err != nil {
		return Dump{}, fmt.Errorf("decoding %s: %w", path, err)
	}
	if d.Schema != DumpSchema {
		return Dump{}, fmt.Errorf("%s: flight dump schema %d, this build reads %d", path, d.Schema, DumpSchema)
	}
	return d, nil
}

// DumpPath names a dump file for a service inside dir; ':' and '/' in the
// service label (addresses, URLs) are flattened so the name stays a single
// path element.
func DumpPath(dir, service string, pid int) string {
	s := strings.NewReplacer(":", "_", "/", "_", "\\", "_").Replace(service)
	if s == "" {
		s = "unknown"
	}
	return filepath.Join(dir, fmt.Sprintf("mmt-flight-%s-%d.json", s, pid))
}

// Render writes the dump as a human-readable table: one line per entry,
// oldest first, with the entry's wall-clock offset from the dump instant.
func (d Dump) Render(w io.Writer) {
	fmt.Fprintf(w, "flight dump: %s (reason: %s, pid %d, taken %s)\n",
		d.Service, d.Reason, d.PID, time.Unix(0, d.TakenUNS).UTC().Format(time.RFC3339Nano))
	fmt.Fprintf(w, "%d entries, %d older entries overwritten\n\n", len(d.Entries), d.Dropped)
	fmt.Fprintf(w, "%10s %-9s %-40s %-24s %s\n", "age", "kind", "what", "trace", "detail")
	for _, e := range d.Entries {
		age := "?"
		if e.UNS > 0 && d.TakenUNS >= e.UNS {
			age = fmt.Sprintf("-%.3fs", float64(d.TakenUNS-e.UNS)/1e9)
		}
		fmt.Fprintf(w, "%10s %-9s %-40s %-24s %s\n",
			age, e.Kind, clip(e.describe(), 40), clip(e.Trace, 24), e.detail())
	}
}

// describe is the entry's primary label for the rendered table.
func (e Entry) describe() string {
	switch e.Kind {
	case KindEvent:
		if e.Name != "" {
			return e.Err + " " + e.Name // Err holds the obs event kind
		}
		return e.Err
	case KindSample:
		return fmt.Sprintf("cycle %d", e.TS)
	case KindLog:
		return e.Name
	default:
		return e.Name
	}
}

// detail is the entry's kind-specific suffix for the rendered table.
func (e Entry) detail() string {
	switch e.Kind {
	case KindEvent:
		var parts []string
		if e.Track != 0 {
			parts = append(parts, fmt.Sprintf("track=%d", e.Track))
		}
		if e.PC != 0 {
			parts = append(parts, fmt.Sprintf("pc=%#x", e.PC))
		}
		if e.Arg != 0 {
			parts = append(parts, fmt.Sprintf("arg=%d", e.Arg))
		}
		if e.Dur != 0 {
			parts = append(parts, fmt.Sprintf("dur=%d", e.Dur))
		}
		return strings.Join(parts, " ")
	case KindSample:
		return fmt.Sprintf("committed=%d rob=%d", e.Arg, e.Track)
	case KindSpan:
		return fmt.Sprintf("%.3fms", float64(e.Dur)/1e6)
	case KindLog:
		return "level=" + levelName(int(e.Arg)-8)
	case KindAdmit:
		return e.Err
	case KindComplete:
		if e.Err != "" {
			return fmt.Sprintf("%.3fms error: %s", float64(e.Dur)/1e6, e.Err)
		}
		return fmt.Sprintf("%.3fms ok", float64(e.Dur)/1e6)
	case KindPanic:
		return "PANIC: " + e.Err
	default:
		return e.Err
	}
}

func levelName(l int) string {
	switch {
	case l < 0:
		return "debug"
	case l < 4:
		return "info"
	case l < 8:
		return "warn"
	default:
		return "error"
	}
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// Panics returns the dump's captured panic entries, oldest first.
func (d Dump) Panics() []Entry {
	var out []Entry
	for _, e := range d.Entries {
		if e.Kind == KindPanic {
			out = append(out, e)
		}
	}
	return out
}

// ServeHTTP serves the live ring as a dump document (GET /v1/debug/flight).
func (r *Recorder) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	d := r.Snapshot("http")
	d.Schema = DumpSchema
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(d) //nolint:errcheck // client went away; nothing to do
}

// FetchDump GETs one process's flight ring from its /v1/debug/flight
// endpoint.
func FetchDump(ctx context.Context, hc *http.Client, base string) (Dump, error) {
	if hc == nil {
		hc = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimRight(base, "/")+"/v1/debug/flight", nil)
	if err != nil {
		return Dump{}, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return Dump{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Dump{}, fmt.Errorf("flight: GET %s/v1/debug/flight: status %d", base, resp.StatusCode)
	}
	var d Dump
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&d); err != nil {
		return Dump{}, err
	}
	return d, nil
}

// InstallSignalDump arranges for SIGQUIT to write the ring to a dump file
// under dir before the process exits with the conventional status 2 and a
// goroutine stack dump on stderr — the black-box lands on disk exactly
// when an operator (or orchestrator) kills a wedged node. Returns the path
// the dump will be written to.
func InstallSignalDump(r *Recorder, dir string, logw io.Writer) string {
	path := DumpPath(dir, r.Service(), os.Getpid())
	c := make(chan os.Signal, 1)
	signal.Notify(c, syscall.SIGQUIT)
	go func() {
		<-c
		if err := r.WriteDump(path, "SIGQUIT"); err == nil {
			if logw != nil {
				fmt.Fprintf(logw, "flight: SIGQUIT dump written to %s\n", path)
			}
		} else if logw != nil {
			fmt.Fprintf(logw, "flight: SIGQUIT dump failed: %v\n", err)
		}
		// Preserve the Go runtime's SIGQUIT contract: goroutine stacks on
		// stderr, exit status 2.
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		os.Stderr.Write(buf[:n]) //nolint:errcheck // best-effort, exiting
		os.Exit(2)
	}()
	return path
}
