package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is ready.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down. The zero value is ready.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Timer accumulates durations as a Prometheus-style summary: a _seconds_sum
// and a _seconds_count pair. The zero value is ready.
type Timer struct {
	ns atomic.Int64
	n  atomic.Uint64
}

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) {
	t.ns.Add(int64(d))
	t.n.Add(1)
}

// Total returns the accumulated duration and observation count.
func (t *Timer) Total() (time.Duration, uint64) {
	return time.Duration(t.ns.Load()), t.n.Load()
}

// DefBuckets are the default latency histogram upper bounds in seconds,
// spanning sub-millisecond HTTP handling to minute-scale simulations.
var DefBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Histogram accumulates duration observations into fixed cumulative-style
// buckets, rendered in the Prometheus histogram exposition format
// (_bucket{le="..."} series plus _sum and _count). Observations are
// lock-free atomics, so hot paths can hold histogram handles like they
// hold counters. Construct with NewHistogram or Registry.Histogram.
type Histogram struct {
	bounds    []float64                  // sorted upper bounds; implicit +Inf after the last
	counts    []atomic.Uint64            // len(bounds)+1; counts[i] observations in (bounds[i-1], bounds[i]]
	exemplars []atomic.Pointer[exemplar] // len(bounds)+1; most recent traced observation per bucket
	sum       atomic.Uint64              // math.Float64bits of the running sum in seconds
	n         atomic.Uint64
}

// exemplar pairs one bucket's most recent observation with the trace id
// that produced it, rendered in the OpenMetrics exemplar position so a
// spiked latency bucket links to a concrete distributed trace. No
// timestamp is kept: this package must stay clock-free (it sits in the
// deterministic simulator's import closure).
type exemplar struct {
	trace string
	value float64 // observed value in seconds
}

// NewHistogram returns a histogram over the given upper bounds (seconds,
// ascending); nil bounds selects DefBuckets. Standalone histograms serve
// callers that need quantile estimates without a registry.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	return &Histogram{
		bounds:    bounds,
		counts:    make([]atomic.Uint64, len(bounds)+1),
		exemplars: make([]atomic.Pointer[exemplar], len(bounds)+1),
	}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) { h.observe(d.Seconds(), "") }

// ObserveWithExemplar records one duration and attaches trace as the
// receiving bucket's exemplar (most recent wins). An empty trace behaves
// like Observe.
func (h *Histogram) ObserveWithExemplar(d time.Duration, trace string) {
	h.observe(d.Seconds(), trace)
}

func (h *Histogram) observe(s float64, trace string) {
	i := sort.SearchFloat64s(h.bounds, s) // first bound >= s, len(bounds) for +Inf
	h.counts[i].Add(1)
	if trace != "" {
		h.exemplars[i].Store(&exemplar{trace: trace, value: s})
	}
	h.n.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + s)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n.Load() }

// Sum returns the accumulated observed time in seconds.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-quantile (0 < q <= 1) in seconds by linear
// interpolation within the bucket holding the target rank — the usual
// histogram_quantile estimate. Observations beyond the last bound clamp
// to it. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.n.Load()
	if total == 0 || len(h.bounds) == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if cum+c >= rank && c > 0 {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[len(h.bounds)-1] // +Inf bucket clamps to the last bound
			if i < len(h.bounds) {
				hi = h.bounds[i]
			}
			return lo + (hi-lo)*((rank-cum)/c)
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// writePrometheus renders the _bucket/_sum/_count series. Buckets whose
// exemplar slot is set carry an OpenMetrics exemplar suffix
// ("# {trace_id=...} value"); untraced histograms render exactly as
// before.
func (h *Histogram) writePrometheus(w io.Writer, name, help string) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name); err != nil {
		return err
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d%s\n",
			name, strconv.FormatFloat(b, 'g', -1, 64), cum, h.exemplarSuffix(i)); err != nil {
			return err
		}
	}
	total := h.n.Load()
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d%s\n%s_sum %g\n%s_count %d\n",
		name, total, h.exemplarSuffix(len(h.bounds)), name, h.Sum(), name, total)
	return err
}

// exemplarSuffix renders bucket i's exemplar, "" when none recorded.
func (h *Histogram) exemplarSuffix(i int) string {
	if h.exemplars == nil {
		return ""
	}
	ex := h.exemplars[i].Load()
	if ex == nil {
		return ""
	}
	return fmt.Sprintf(" # {trace_id=%q} %g", ex.trace, ex.value)
}

// metricKind tags a registry entry for rendering.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindTimer
	kindHistogram
)

// metricEntry is one registered metric.
type metricEntry struct {
	name, help string
	kind       metricKind
	counter    *Counter
	gauge      *Gauge
	timer      *Timer
	histogram  *Histogram
}

// Registry is a process-local metrics registry rendering the Prometheus
// text exposition format. Metrics register once by name (get-or-create);
// updates are lock-free atomics, so hot paths can hold metric handles.
// Registry implements http.Handler for the /metrics endpoint.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*metricEntry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*metricEntry)}
}

// Counter returns the counter registered under name, creating it with the
// given help text if new. Registering a name twice with different types
// panics — that is a programming error, not a runtime condition.
func (r *Registry) Counter(name, help string) *Counter {
	e := r.ensure(name, help, kindCounter)
	return e.counter
}

// Gauge returns the gauge registered under name, creating it if new.
func (r *Registry) Gauge(name, help string) *Gauge {
	e := r.ensure(name, help, kindGauge)
	return e.gauge
}

// Timer returns the timer registered under name (exported as
// name_seconds_sum / name_seconds_count), creating it if new.
func (r *Registry) Timer(name, help string) *Timer {
	e := r.ensure(name, help, kindTimer)
	return e.timer
}

// Histogram returns the histogram registered under name (exported as
// name_bucket{le="..."} / name_sum / name_count with DefBuckets bounds),
// creating it if new.
func (r *Registry) Histogram(name, help string) *Histogram {
	e := r.ensure(name, help, kindHistogram)
	return e.histogram
}

func (r *Registry) ensure(name, help string, kind metricKind) *metricEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different type", name))
		}
		return e
	}
	e := &metricEntry{name: name, help: help, kind: kind}
	switch kind {
	case kindCounter:
		e.counter = &Counter{}
	case kindGauge:
		e.gauge = &Gauge{}
	case kindTimer:
		e.timer = &Timer{}
	case kindHistogram:
		e.histogram = NewHistogram(nil)
	}
	r.entries[name] = e
	return e
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format, sorted by name for stable output.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	entries := make([]*metricEntry, 0, len(r.entries))
	for _, e := range r.entries { // mmtvet:ok — sorted by name below
		entries = append(entries, e)
	}
	r.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	for _, e := range entries {
		var err error
		switch e.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
				e.name, e.help, e.name, e.name, e.counter.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n",
				e.name, e.help, e.name, e.name, e.gauge.Value())
		case kindTimer:
			sum, n := e.timer.Total()
			_, err = fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s summary\n%s_seconds_sum %g\n%s_seconds_count %d\n",
				e.name, e.help, e.name, e.name, sum.Seconds(), e.name, n)
		case kindHistogram:
			err = e.histogram.writePrometheus(w, e.name, e.help)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Snapshot returns the current values keyed by metric name (timers as
// "<name>_seconds_sum" and "<name>_seconds_count"), for the expvar
// endpoint and tests.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.entries))
	for name, e := range r.entries { // mmtvet:ok — builds a map, order-insensitive
		switch e.kind {
		case kindCounter:
			out[name] = e.counter.Value()
		case kindGauge:
			out[name] = e.gauge.Value()
		case kindTimer:
			sum, n := e.timer.Total()
			out[name+"_seconds_sum"] = sum.Seconds()
			out[name+"_seconds_count"] = n
		case kindHistogram:
			out[name+"_sum"] = e.histogram.Sum()
			out[name+"_count"] = e.histogram.Count()
		}
	}
	return out
}

// ServeHTTP serves the Prometheus text format (the /metrics endpoint).
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	r.WritePrometheus(w) //nolint:errcheck // client went away; nothing to do
}
