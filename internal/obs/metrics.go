package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is ready.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down. The zero value is ready.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Timer accumulates durations as a Prometheus-style summary: a _seconds_sum
// and a _seconds_count pair. The zero value is ready.
type Timer struct {
	ns atomic.Int64
	n  atomic.Uint64
}

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) {
	t.ns.Add(int64(d))
	t.n.Add(1)
}

// Total returns the accumulated duration and observation count.
func (t *Timer) Total() (time.Duration, uint64) {
	return time.Duration(t.ns.Load()), t.n.Load()
}

// metricKind tags a registry entry for rendering.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindTimer
)

// metricEntry is one registered metric.
type metricEntry struct {
	name, help string
	kind       metricKind
	counter    *Counter
	gauge      *Gauge
	timer      *Timer
}

// Registry is a process-local metrics registry rendering the Prometheus
// text exposition format. Metrics register once by name (get-or-create);
// updates are lock-free atomics, so hot paths can hold metric handles.
// Registry implements http.Handler for the /metrics endpoint.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*metricEntry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*metricEntry)}
}

// Counter returns the counter registered under name, creating it with the
// given help text if new. Registering a name twice with different types
// panics — that is a programming error, not a runtime condition.
func (r *Registry) Counter(name, help string) *Counter {
	e := r.ensure(name, help, kindCounter)
	return e.counter
}

// Gauge returns the gauge registered under name, creating it if new.
func (r *Registry) Gauge(name, help string) *Gauge {
	e := r.ensure(name, help, kindGauge)
	return e.gauge
}

// Timer returns the timer registered under name (exported as
// name_seconds_sum / name_seconds_count), creating it if new.
func (r *Registry) Timer(name, help string) *Timer {
	e := r.ensure(name, help, kindTimer)
	return e.timer
}

func (r *Registry) ensure(name, help string, kind metricKind) *metricEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different type", name))
		}
		return e
	}
	e := &metricEntry{name: name, help: help, kind: kind}
	switch kind {
	case kindCounter:
		e.counter = &Counter{}
	case kindGauge:
		e.gauge = &Gauge{}
	case kindTimer:
		e.timer = &Timer{}
	}
	r.entries[name] = e
	return e
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format, sorted by name for stable output.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	entries := make([]*metricEntry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	for _, e := range entries {
		var err error
		switch e.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
				e.name, e.help, e.name, e.name, e.counter.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n",
				e.name, e.help, e.name, e.name, e.gauge.Value())
		case kindTimer:
			sum, n := e.timer.Total()
			_, err = fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s summary\n%s_seconds_sum %g\n%s_seconds_count %d\n",
				e.name, e.help, e.name, e.name, sum.Seconds(), e.name, n)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Snapshot returns the current values keyed by metric name (timers as
// "<name>_seconds_sum" and "<name>_seconds_count"), for the expvar
// endpoint and tests.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.entries))
	for name, e := range r.entries {
		switch e.kind {
		case kindCounter:
			out[name] = e.counter.Value()
		case kindGauge:
			out[name] = e.gauge.Value()
		case kindTimer:
			sum, n := e.timer.Total()
			out[name+"_seconds_sum"] = sum.Seconds()
			out[name+"_seconds_count"] = n
		}
	}
	return out
}

// ServeHTTP serves the Prometheus text format (the /metrics endpoint).
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	r.WritePrometheus(w) //nolint:errcheck // client went away; nothing to do
}
