package obs

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestRegistryPrometheus(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mmt_test_jobs_total", "Jobs.")
	g := r.Gauge("mmt_test_depth", "Depth.")
	tm := r.Timer("mmt_test_run", "Run time.")
	c.Add(3)
	g.Set(-2)
	tm.Observe(1500 * time.Millisecond)
	tm.Observe(500 * time.Millisecond)

	// Same name returns the same instrument; conflicting kind panics.
	if r.Counter("mmt_test_jobs_total", "Jobs.") != c {
		t.Error("re-registration returned a new counter")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("kind conflict did not panic")
			}
		}()
		r.Gauge("mmt_test_jobs_total", "Jobs.")
	}()

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP mmt_test_jobs_total Jobs.",
		"# TYPE mmt_test_jobs_total counter",
		"mmt_test_jobs_total 3",
		"# TYPE mmt_test_depth gauge",
		"mmt_test_depth -2",
		"# TYPE mmt_test_run summary",
		"mmt_test_run_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	snap := r.Snapshot()
	if snap["mmt_test_jobs_total"] != uint64(3) {
		t.Errorf("snapshot counter = %v", snap["mmt_test_jobs_total"])
	}
	if snap["mmt_test_depth"] != int64(-2) {
		t.Errorf("snapshot gauge = %v", snap["mmt_test_depth"])
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(nil)
	for i := 0; i < 50; i++ {
		h.Observe(2 * time.Millisecond) // (0.001, 0.0025] bucket
	}
	for i := 0; i < 50; i++ {
		h.Observe(400 * time.Millisecond) // (0.25, 0.5] bucket
	}
	h.Observe(5 * time.Minute) // beyond the last bound: +Inf bucket

	if h.Count() != 101 {
		t.Errorf("count = %d", h.Count())
	}
	wantSum := 50*0.002 + 50*0.4 + 300.0
	if got := h.Sum(); got < wantSum-1e-9 || got > wantSum+1e-9 {
		t.Errorf("sum = %g, want %g", got, wantSum)
	}
	// p50 lands in the (0.25, 0.5] bucket; p99+ clamps toward the tail.
	if q := h.Quantile(0.5); q <= 0.001 || q > 0.5 {
		t.Errorf("p50 = %g", q)
	}
	if q := h.Quantile(0.25); q > 0.0025 {
		t.Errorf("p25 = %g, want within the 2ms bucket", q)
	}
	if q := h.Quantile(1); q != DefBuckets[len(DefBuckets)-1] {
		t.Errorf("p100 = %g, want clamp to last bound", q)
	}

	var empty Histogram
	if (&empty).Quantile(0.5) != 0 {
		t.Error("empty histogram quantile != 0")
	}
}

func TestRegistryHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("mmt_test_latency", "Latency.")
	h.Observe(3 * time.Millisecond)
	h.Observe(700 * time.Millisecond)
	if r.Histogram("mmt_test_latency", "Latency.") != h {
		t.Error("re-registration returned a new histogram")
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE mmt_test_latency histogram",
		`mmt_test_latency_bucket{le="0.005"} 1`,
		`mmt_test_latency_bucket{le="1"} 2`,
		`mmt_test_latency_bucket{le="+Inf"} 2`,
		"mmt_test_latency_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	snap := r.Snapshot()
	if snap["mmt_test_latency_count"] != uint64(2) {
		t.Errorf("snapshot count = %v", snap["mmt_test_latency_count"])
	}
}

func TestHistogramExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("mmt_test_exlat", "Latency.")
	h.Observe(3 * time.Millisecond) // untraced: no exemplar on this bucket
	h.ObserveWithExemplar(700*time.Millisecond, "load-5-0")
	h.ObserveWithExemplar(800*time.Millisecond, "t-j000001-17") // same bucket: most recent wins
	h.ObserveWithExemplar(40*time.Millisecond, "")              // empty trace: plain observation

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `mmt_test_exlat_bucket{le="1"} 4 # {trace_id="t-j000001-17"} 0.8`) {
		t.Errorf("exposition missing winning exemplar:\n%s", out)
	}
	if strings.Contains(out, "load-5-0") {
		t.Errorf("overwritten exemplar still rendered:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, `le="0.005"`) && strings.Contains(line, "#") {
			t.Errorf("untraced bucket grew an exemplar: %s", line)
		}
	}
}

func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("mmt_test_served_total", "Requests.").Inc()
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	if body := get("/metrics"); !strings.Contains(body, "mmt_test_served_total 1") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "\"mmt\"") {
		t.Errorf("/debug/vars missing mmt var:\n%s", body)
	}
	if body := get("/debug/pprof/cmdline"); body == "" {
		t.Error("/debug/pprof/cmdline empty")
	}

	// A second server must not panic on duplicate expvar publication and
	// must expose its own registry.
	reg2 := NewRegistry()
	reg2.Counter("mmt_test_second_total", "Second server.").Add(7)
	srv2, err := Serve("127.0.0.1:0", reg2)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
}
