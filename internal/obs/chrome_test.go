package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// feedChromeTrace writes a fixed, representative event stream into a sink.
func feedChromeTrace(s *ChromeTraceSink) error {
	s.Event(Event{TS: 5, Kind: EvFetchMode, Track: TrackMachine, Arg: PackModeMix(1, 0, 0)})
	s.Event(Event{TS: 40, Kind: EvDiverge, Track: 0, PC: 0x104c, Arg: 2})
	s.Event(Event{TS: 41, Kind: EvFetchMode, Track: TrackMachine, Arg: PackModeMix(0, 2, 0)})
	s.Event(Event{TS: 44, Kind: EvStall, Track: TrackMachine, Arg: uint64(StallROB)})
	s.Event(Event{TS: 60, Kind: EvCatchupStart, Track: 1, PC: 0x1080, Arg: 1})
	s.Event(Event{TS: 75, Kind: EvRollback, Track: 1, PC: 0x1090, Arg: 1})
	s.Event(Event{TS: 75, Kind: EvSquash, Track: 1, PC: 0x1090, Arg: 14})
	s.Sample(Sample{TS: 100, Committed: 250, FetchQ: 4, ROB: 48, IQ: 12, LSQ: 8,
		GroupsMerge: 0, GroupsDetect: 1, GroupsCatchup: 1,
		FetchedMerge: 180, FetchedDetect: 60, FetchedCatchup: 20})
	s.Event(Event{TS: 130, Kind: EvRemerge, Track: 0, PC: 0x10a0, Arg: 2})
	s.Sample(Sample{TS: 200, Committed: 640, FetchQ: 2, ROB: 30, IQ: 6, LSQ: 4,
		GroupsMerge: 1, GroupsDetect: 0, GroupsCatchup: 0,
		FetchedMerge: 420, FetchedDetect: 60, FetchedCatchup: 20})
	s.Event(Event{TS: 210, Kind: EvJob, Track: 2, Dur: 900, Name: "ammp/Base/2T", Arg: 1})
	s.Event(Event{TS: 250, Kind: EvCounter, Track: TrackMachine, Name: "workers busy", Arg: 3})
	return s.Close()
}

// TestChromeTraceGolden locks the exporter's exact output: the golden file
// is what we claim loads in Perfetto / chrome://tracing, so any change to
// the emitted records must be reviewed against a real viewer (regenerate
// with go test ./internal/obs -run Golden -update).
func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	s := NewChromeTrace(&buf, ChromeTraceConfig{
		Process:     "mmtsim",
		TrackPrefix: "thread",
		Meta:        map[string]string{"app": "equake", "version": "test"},
	})
	if err := feedChromeTrace(s); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "chrome_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome trace drifted from golden (rerun with -update and re-check in Perfetto)\ngot:  %s\nwant: %s", buf.Bytes(), want)
	}
}

// TestChromeTraceWellFormed checks the structural properties a viewer
// needs, independent of the exact golden bytes.
func TestChromeTraceWellFormed(t *testing.T) {
	var buf bytes.Buffer
	s := NewChromeTrace(&buf, ChromeTraceConfig{Meta: map[string]string{"k": "v"}})
	if err := feedChromeTrace(s); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			PID   int            `json:"pid"`
			TID   int64          `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		OtherData       map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exporter output is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" || doc.OtherData["k"] != "v" {
		t.Errorf("document fields: unit=%q otherData=%v", doc.DisplayTimeUnit, doc.OtherData)
	}
	phases := map[string]int{}
	named := map[string]bool{}
	for _, r := range doc.TraceEvents {
		phases[r.Phase]++
		if r.Phase == "M" {
			named[r.Name] = true
		}
	}
	if phases["M"] == 0 || phases["C"] == 0 || phases["i"] == 0 || phases["X"] == 0 {
		t.Errorf("missing record phases: %v", phases)
	}
	if !named["process_name"] || !named["thread_name"] {
		t.Errorf("missing metadata records: %v", named)
	}
}

// TestChromeTraceEmpty: a sink closed with no events must still be a valid
// document.
func TestChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	s := NewChromeTrace(&buf, ChromeTraceConfig{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Errorf("empty trace invalid: %s", buf.Bytes())
	}
}

// TestChromeTraceNameTrack: an explicit track name must override the
// "<prefix> <n>" default and survive a subsequent event on that track.
func TestChromeTraceNameTrack(t *testing.T) {
	var buf bytes.Buffer
	s := NewChromeTrace(&buf, ChromeTraceConfig{Process: "mmttrace"})
	s.NameTrack(0, "mmtrouter@127.0.0.1:8393")
	s.NameTrack(0, "shadowed") // second call for the same track: dropped
	s.Event(Event{TS: 10, Kind: EvJob, Track: 0, Dur: 5, Name: "router.submit"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, r := range doc.TraceEvents {
		if r["name"] == "thread_name" {
			args := r["args"].(map[string]any)
			names = append(names, args["name"].(string))
		}
	}
	if len(names) != 1 || names[0] != "mmtrouter@127.0.0.1:8393" {
		t.Errorf("thread names = %v", names)
	}
}
