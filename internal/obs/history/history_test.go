package history

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"mmt/internal/obs"
)

func TestHistorySamplesRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("test_total", "help")
	g := reg.Gauge("test_depth", "help")
	c.Inc()
	g.Set(7)

	h := New("svc", reg, time.Hour, 4) // first sample is synchronous
	defer h.Close()
	c.Add(4)
	h.sample()

	ss := h.Samples()
	if len(ss) != 2 {
		t.Fatalf("samples = %d, want 2", len(ss))
	}
	if ss[0].Values["test_total"] != 1 || ss[1].Values["test_total"] != 5 {
		t.Errorf("counter series = %v, %v", ss[0].Values["test_total"], ss[1].Values["test_total"])
	}
	if ss[1].Values["test_depth"] != 7 {
		t.Errorf("gauge = %v", ss[1].Values["test_depth"])
	}
	if ss[0].UNS > ss[1].UNS {
		t.Error("samples out of order")
	}

	// Bounded: extra samples evict the oldest.
	for i := 0; i < 10; i++ {
		h.sample()
	}
	ss = h.Samples()
	if len(ss) != 4 {
		t.Fatalf("samples after overflow = %d, want 4", len(ss))
	}
	for i := 1; i < len(ss); i++ {
		if ss[i].UNS < ss[i-1].UNS {
			t.Error("overflowed samples out of order")
		}
	}
}

func TestHistoryServeHTTP(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("x_total", "help").Inc()
	h := New("svc", reg, time.Hour, 8)
	defer h.Close()

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/debug/metrics", nil))
	var resp Response
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Service != "svc" || resp.EveryMS != time.Hour.Milliseconds() || len(resp.Samples) < 2 {
		t.Errorf("response = %+v", resp)
	}
	if resp.Samples[0].Values["x_total"] != 1 {
		t.Errorf("values = %v", resp.Samples[0].Values)
	}
}
