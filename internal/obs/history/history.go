// Package history samples a metrics Registry on a fixed cadence into a
// bounded ring, giving every process a short Prometheus-free time series
// of its own metrics — enough for mmtdoctor to compute rates and call out
// which counters moved during the last incident window. It lives outside
// package obs because sampling is wall-clock driven and obs sits on the
// simulator's deterministic import path.
package history

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"mmt/internal/obs"
)

// Sample is one periodic snapshot of every registered metric, flattened
// to float64 (counters and gauges as their value, timers and histograms
// as their _sum/_count pairs).
type Sample struct {
	UNS    int64              `json:"uns"`
	Values map[string]float64 `json:"values"`
}

// Response is the GET /v1/debug/metrics body: the in-process metrics
// time series, oldest first.
type Response struct {
	Service string   `json:"service,omitempty"`
	EveryMS int64    `json:"every_ms"`
	Samples []Sample `json:"samples"`
}

// DefaultCapacity bounds the in-process metrics time series: at the
// default 5s cadence it covers the last ~20 minutes.
const DefaultCapacity = 240

// Sampler drives the ring. Close stops it; a nil *Sampler is inert.
type Sampler struct {
	reg     *obs.Registry
	service string
	every   time.Duration

	mu   sync.Mutex
	buf  []Sample
	next int

	stop     chan struct{}
	stopOnce sync.Once
}

// New starts sampling reg every `every` (default 5s) keeping the most
// recent `capacity` samples (<= 0 selects DefaultCapacity). The first
// sample is taken synchronously so a scrape right after boot is never
// empty.
func New(service string, reg *obs.Registry, every time.Duration, capacity int) *Sampler {
	if every <= 0 {
		every = 5 * time.Second
	}
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	h := &Sampler{
		reg:     reg,
		service: service,
		every:   every,
		buf:     make([]Sample, 0, capacity),
		stop:    make(chan struct{}),
	}
	h.sample()
	go h.loop()
	return h
}

func (h *Sampler) loop() {
	t := time.NewTicker(h.every)
	defer t.Stop()
	for {
		select {
		case <-h.stop:
			return
		case <-t.C:
			h.sample()
		}
	}
}

// sample flattens the registry snapshot and appends it to the ring.
func (h *Sampler) sample() {
	snap := h.reg.Snapshot()
	vals := make(map[string]float64, len(snap))
	for k, v := range snap { // mmtvet:ok — builds a map, order-insensitive
		switch x := v.(type) {
		case uint64:
			vals[k] = float64(x)
		case int64:
			vals[k] = float64(x)
		case float64:
			vals[k] = x
		case int:
			vals[k] = float64(x)
		}
	}
	s := Sample{UNS: time.Now().UnixNano(), Values: vals}
	h.mu.Lock()
	if len(h.buf) < cap(h.buf) {
		h.buf = append(h.buf, s)
	} else {
		h.buf[h.next] = s
		h.next = (h.next + 1) % len(h.buf)
	}
	h.mu.Unlock()
}

// Samples returns the ring's contents oldest first.
func (h *Sampler) Samples() []Sample {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]Sample, 0, len(h.buf))
	out = append(out, h.buf[h.next:]...)
	out = append(out, h.buf[:h.next]...)
	return out
}

// Close stops the sampler. Idempotent; the collected samples stay
// readable.
func (h *Sampler) Close() {
	if h == nil {
		return
	}
	h.stopOnce.Do(func() { close(h.stop) })
}

// ServeHTTP serves the time series (GET /v1/debug/metrics).
func (h *Sampler) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	h.sample() // the freshest point rides along, so scrape deltas never lag
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(Response{ //nolint:errcheck // client went away
		Service: h.service,
		EveryMS: h.every.Milliseconds(),
		Samples: h.Samples(),
	})
}
