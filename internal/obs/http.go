package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// Server is the live-metrics HTTP listener started by Serve.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// expvarOnce guards the process-wide expvar publication: expvar.Publish
// panics on duplicate names, and tests (or an mmtsim embedded in a larger
// process) may start several metrics servers.
var (
	expvarOnce sync.Once
	expvarReg  *Registry
	expvarMu   sync.Mutex
)

// Serve starts an HTTP listener on addr exposing the registry at
// /metrics (Prometheus text format), the standard expvar dump at
// /debug/vars, and the net/http/pprof profiling handlers under
// /debug/pprof/. Use addr ":0" for an ephemeral port and Addr to discover
// it. Close shuts the listener down.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: metrics listener: %w", err)
	}

	// Publish the registry through expvar exactly once per process; later
	// servers repoint the published function at their registry.
	expvarMu.Lock()
	expvarReg = reg
	expvarMu.Unlock()
	expvarOnce.Do(func() {
		expvar.Publish("mmt", expvar.Func(func() any {
			expvarMu.Lock()
			r := expvarReg
			expvarMu.Unlock()
			if r == nil {
				return nil
			}
			return r.Snapshot()
		}))
	})

	mux := http.NewServeMux()
	mux.Handle("/metrics", reg)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{ln: ln, srv: &http.Server{Handler: mux}}
	go s.srv.Serve(ln) //nolint:errcheck // ErrServerClosed after Close
	return s, nil
}

// Addr returns the listener's resolved address ("127.0.0.1:43721").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the listener down immediately.
func (s *Server) Close() error { return s.srv.Close() }
