package cli

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"
)

func TestRunSimBasic(t *testing.T) {
	var out bytes.Buffer
	err := RunSim([]string{"-app", "libsvm", "-preset", "MMT-FXR", "-threads", "2"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"libsvm / MMT-FXR / 2 threads", "cycles", "fetch modes", "energy per job"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunSimList(t *testing.T) {
	var out bytes.Buffer
	if err := RunSim([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, app := range []string{"ammp", "canneal", "allreduce-mp"} {
		if !strings.Contains(s, app) {
			t.Errorf("list missing %s", app)
		}
	}
}

func TestRunSimDisasm(t *testing.T) {
	var out bytes.Buffer
	if err := RunSim([]string{"-app", "twolf", "-disasm"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "move:") || !strings.Contains(s, "mul") {
		t.Errorf("disassembly incomplete:\n%s", s)
	}
}

func TestRunSimErrors(t *testing.T) {
	var out bytes.Buffer
	if err := RunSim([]string{"-app", "nosuch"}, &out); err == nil {
		t.Error("unknown app accepted")
	}
	if err := RunSim([]string{"-app", "nosuch", "-disasm"}, &out); err == nil {
		t.Error("unknown app accepted for disasm")
	}
	if err := RunSim([]string{"-badflag"}, &out); err == nil {
		t.Error("bad flag accepted")
	}
	if err := RunSim([]string{"-app", "ammp", "-preset", "Bogus"}, &out); err == nil {
		t.Error("bad preset accepted")
	}
}

func TestRunSimOverrides(t *testing.T) {
	var out bytes.Buffer
	err := RunSim([]string{"-app", "libsvm", "-threads", "2", "-fhb", "8", "-fetchwidth", "4", "-lsports", "4"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "committed insts") {
		t.Error("override run produced no stats")
	}
}

func TestRunProfileSingleApp(t *testing.T) {
	var out bytes.Buffer
	err := RunProfile([]string{"-app", "twolf", "-maxinsts", "120000"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Figure 1") || !strings.Contains(s, "Figure 2") {
		t.Errorf("profile output incomplete:\n%s", s)
	}
	if !strings.Contains(s, "twolf") {
		t.Error("app row missing")
	}
	if err := RunProfile([]string{"-app", "nosuch"}, &out); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestRunBenchSingleArtifact(t *testing.T) {
	var out bytes.Buffer
	if err := RunBench([]string{"-only", "table3"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "FHB CAM") {
		t.Errorf("table3 missing:\n%s", out.String())
	}
}

func TestRunBenchRejectsUnknownArtifact(t *testing.T) {
	var out bytes.Buffer
	if err := RunBench([]string{"-only", "fig99"}, &out); err == nil {
		t.Error("unknown artifact accepted")
	}
}

func TestRunBenchWritesFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/report.txt"
	var out bytes.Buffer
	if err := RunBench([]string{"-only", "table3", "-out", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := readFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(data, "Table 3") {
		t.Errorf("file content wrong: %q", data)
	}
}

func TestRunPipeTrace(t *testing.T) {
	var out bytes.Buffer
	err := RunPipe([]string{"-app", "twolf", "-threads", "2", "-cycles", "30", "-dump", "15"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "tracing cycles") || !strings.Contains(s, "totals:") {
		t.Errorf("trace output incomplete:\n%s", s)
	}
	// The -dump flag prints machine state.
	if !strings.Contains(s, "robOcc") {
		t.Errorf("dump missing:\n%s", s)
	}
	if err := RunPipe([]string{"-app", "nosuch"}, &out); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestArtifactsListMatchesBench(t *testing.T) {
	// Every listed artifact must run standalone on a trivial budget —
	// checked here only for the cheap ones; the expensive ones are
	// exercised by the bench suite.
	for _, a := range []string{"table3"} {
		var out bytes.Buffer
		if err := RunBench([]string{"-only", a}, &out); err != nil {
			t.Errorf("artifact %s: %v", a, err)
		}
	}
	if len(Artifacts) != 18 {
		t.Errorf("artifact count = %d", len(Artifacts))
	}
}

func readFile(path string) (string, error) {
	b, err := os.ReadFile(path)
	return string(b), err
}

func TestRunBenchParallelDeterminism(t *testing.T) {
	// The acceptance bar for the runner: the fig5a report on stdout is
	// byte-identical whether one worker runs the batch or eight do.
	var serial, parallel bytes.Buffer
	if _, err := runBench([]string{"-only", "fig5a", "-j", "1"}, &serial, io.Discard); err != nil {
		t.Fatal(err)
	}
	if _, err := runBench([]string{"-only", "fig5a", "-j", "8"}, &parallel, io.Discard); err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Errorf("-j 1 and -j 8 reports differ:\n--- j1 ---\n%s\n--- j8 ---\n%s", serial.String(), parallel.String())
	}
	if !strings.Contains(serial.String(), "geomean") {
		t.Errorf("fig5a output incomplete:\n%s", serial.String())
	}
}

func TestRunBenchWarmCacheRunsNothing(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-only", "sec63", "-cache-dir", dir, "-j", "2"}
	var cold, warm bytes.Buffer
	s1, err := runBench(args, &cold, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Jobs == 0 || s1.Executed != s1.Jobs || s1.CacheHits != 0 {
		t.Fatalf("cold summary = %+v", s1)
	}
	s2, err := runBench(args, &warm, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	// The warm run must execute zero simulations and serve everything
	// from the persistent cache — with the identical report.
	if s2.Executed != 0 || s2.CacheHits != s2.Jobs || s2.Jobs != s1.Jobs {
		t.Errorf("warm summary = %+v", s2)
	}
	if cold.String() != warm.String() {
		t.Error("cached report differs from fresh report")
	}
}

func TestRunBenchProgressOnSeparateStream(t *testing.T) {
	var out, progress bytes.Buffer
	s, err := runBench([]string{"-only", "fig5a", "-j", "2"}, &out, &progress)
	if err != nil {
		t.Fatal(err)
	}
	if s.Jobs == 0 {
		t.Fatalf("no jobs scheduled: %+v", s)
	}
	if !strings.Contains(progress.String(), "runner:") {
		t.Errorf("summary missing from progress stream: %q", progress.String())
	}
	if strings.Contains(out.String(), "runner:") {
		t.Error("runner chatter leaked into the report stream")
	}
}

func TestRunSimEquOverride(t *testing.T) {
	var small, full bytes.Buffer
	if err := RunSim([]string{"-app", "twolf", "-equ", "MOVES=50"}, &small); err != nil {
		t.Fatal(err)
	}
	if err := RunSim([]string{"-app", "twolf"}, &full); err != nil {
		t.Fatal(err)
	}
	if small.String() == full.String() {
		t.Error("override changed nothing")
	}
	var out bytes.Buffer
	if err := RunSim([]string{"-app", "twolf", "-equ", "garbage"}, &out); err == nil {
		t.Error("bad -equ accepted")
	}
	if err := RunSim([]string{"-app", "twolf", "-equ", "MOVES=xyz"}, &out); err == nil {
		t.Error("bad -equ value accepted")
	}
	if err := RunSim([]string{"-app", "twolf", "-equ", "NOPE=5"}, &out); err == nil {
		t.Error("unknown constant accepted")
	}
}
