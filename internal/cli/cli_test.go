package cli

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

func TestRunSimBasic(t *testing.T) {
	var out bytes.Buffer
	err := RunSim([]string{"-app", "libsvm", "-preset", "MMT-FXR", "-threads", "2"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"libsvm / MMT-FXR / 2 threads", "cycles", "fetch modes", "energy per job"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunSimList(t *testing.T) {
	var out bytes.Buffer
	if err := RunSim([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, app := range []string{"ammp", "canneal", "allreduce-mp"} {
		if !strings.Contains(s, app) {
			t.Errorf("list missing %s", app)
		}
	}
}

func TestRunSimDisasm(t *testing.T) {
	var out bytes.Buffer
	if err := RunSim([]string{"-app", "twolf", "-disasm"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "move:") || !strings.Contains(s, "mul") {
		t.Errorf("disassembly incomplete:\n%s", s)
	}
}

func TestRunSimErrors(t *testing.T) {
	var out bytes.Buffer
	if err := RunSim([]string{"-app", "nosuch"}, &out); err == nil {
		t.Error("unknown app accepted")
	}
	if err := RunSim([]string{"-app", "nosuch", "-disasm"}, &out); err == nil {
		t.Error("unknown app accepted for disasm")
	}
	if err := RunSim([]string{"-badflag"}, &out); err == nil {
		t.Error("bad flag accepted")
	}
	if err := RunSim([]string{"-app", "ammp", "-preset", "Bogus"}, &out); err == nil {
		t.Error("bad preset accepted")
	}
}

func TestRunSimOverrides(t *testing.T) {
	var out bytes.Buffer
	err := RunSim([]string{"-app", "libsvm", "-threads", "2", "-fhb", "8", "-fetchwidth", "4", "-lsports", "4"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "committed insts") {
		t.Error("override run produced no stats")
	}
}

func TestRunProfileSingleApp(t *testing.T) {
	var out bytes.Buffer
	err := RunProfile([]string{"-app", "twolf", "-maxinsts", "120000"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Figure 1") || !strings.Contains(s, "Figure 2") {
		t.Errorf("profile output incomplete:\n%s", s)
	}
	if !strings.Contains(s, "twolf") {
		t.Error("app row missing")
	}
	if err := RunProfile([]string{"-app", "nosuch"}, &out); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestRunBenchSingleArtifact(t *testing.T) {
	var out bytes.Buffer
	if err := RunBench([]string{"-only", "table3"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "FHB CAM") {
		t.Errorf("table3 missing:\n%s", out.String())
	}
}

func TestRunBenchRejectsUnknownArtifact(t *testing.T) {
	var out bytes.Buffer
	if err := RunBench([]string{"-only", "fig99"}, &out); err == nil {
		t.Error("unknown artifact accepted")
	}
}

func TestRunBenchWritesFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/report.txt"
	var out bytes.Buffer
	if err := RunBench([]string{"-only", "table3", "-out", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := readFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(data, "Table 3") {
		t.Errorf("file content wrong: %q", data)
	}
}

func TestRunPipeTrace(t *testing.T) {
	var out bytes.Buffer
	err := RunPipe([]string{"-app", "twolf", "-threads", "2", "-cycles", "30", "-dump", "15"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "tracing cycles") || !strings.Contains(s, "totals:") {
		t.Errorf("trace output incomplete:\n%s", s)
	}
	// The -dump flag prints machine state.
	if !strings.Contains(s, "robOcc") {
		t.Errorf("dump missing:\n%s", s)
	}
	if err := RunPipe([]string{"-app", "nosuch"}, &out); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestArtifactsListMatchesBench(t *testing.T) {
	// Every listed artifact must run standalone on a trivial budget —
	// checked here only for the cheap ones; the expensive ones are
	// exercised by the bench suite.
	for _, a := range []string{"table3"} {
		var out bytes.Buffer
		if err := RunBench([]string{"-only", a}, &out); err != nil {
			t.Errorf("artifact %s: %v", a, err)
		}
	}
	if len(Artifacts) != 18 {
		t.Errorf("artifact count = %d", len(Artifacts))
	}
}

func readFile(path string) (string, error) {
	b, err := os.ReadFile(path)
	return string(b), err
}

func TestRunSimEquOverride(t *testing.T) {
	var small, full bytes.Buffer
	if err := RunSim([]string{"-app", "twolf", "-equ", "MOVES=50"}, &small); err != nil {
		t.Fatal(err)
	}
	if err := RunSim([]string{"-app", "twolf"}, &full); err != nil {
		t.Fatal(err)
	}
	if small.String() == full.String() {
		t.Error("override changed nothing")
	}
	var out bytes.Buffer
	if err := RunSim([]string{"-app", "twolf", "-equ", "garbage"}, &out); err == nil {
		t.Error("bad -equ accepted")
	}
	if err := RunSim([]string{"-app", "twolf", "-equ", "MOVES=xyz"}, &out); err == nil {
		t.Error("bad -equ value accepted")
	}
	if err := RunSim([]string{"-app", "twolf", "-equ", "NOPE=5"}, &out); err == nil {
		t.Error("unknown constant accepted")
	}
}
