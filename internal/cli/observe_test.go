package cli

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mmt/internal/obs"
)

// TestRunSimTraceCapture runs mmtsim with both trace outputs and checks
// that (a) the result on stdout is identical to an untraced run, (b) the
// Chrome trace is a valid JSON document with the expected structure, and
// (c) the JSONL log decodes and carries the run's metadata.
func TestRunSimTraceCapture(t *testing.T) {
	dir := t.TempDir()
	traceFile := filepath.Join(dir, "trace.json")
	eventsFile := filepath.Join(dir, "events.jsonl")

	var traced bytes.Buffer
	err := RunSim([]string{"-app", "libsvm", "-threads", "2",
		"-trace-out", traceFile, "-events-out", eventsFile, "-sample-every", "100"}, &traced)
	if err != nil {
		t.Fatal(err)
	}

	var plain bytes.Buffer
	if err := RunSim([]string{"-app", "libsvm", "-threads", "2"}, &plain); err != nil {
		t.Fatal(err)
	}
	if traced.String() != plain.String() {
		t.Errorf("tracing changed the result output:\ntraced: %s\nplain: %s", traced.String(), plain.String())
	}

	raw, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
		OtherData   map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("-trace-out produced invalid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("trace has no events")
	}
	if doc.OtherData["app"] != "libsvm" || doc.OtherData["version"] == "" {
		t.Errorf("trace metadata: %v", doc.OtherData)
	}

	f, err := os.Open(eventsFile)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	lines, err := obs.DecodeJSONL(f)
	if err != nil {
		t.Fatalf("-events-out did not decode: %v", err)
	}
	if len(lines) < 2 || lines[0].Type != "meta" || lines[0].Meta["app"] != "libsvm" {
		t.Fatalf("JSONL log malformed: %d lines, first %+v", len(lines), lines[0])
	}
	var samples int
	for _, l := range lines {
		if l.Type == "sample" {
			samples++
		}
	}
	if samples == 0 {
		t.Error("no cycle samples despite -sample-every 100")
	}
}

func TestVersionFlags(t *testing.T) {
	for _, run := range []struct {
		name string
		fn   func([]string, *bytes.Buffer) error
	}{
		{"mmtsim", func(a []string, b *bytes.Buffer) error { return RunSim(a, b) }},
		{"mmtpipe", func(a []string, b *bytes.Buffer) error { return RunPipe(a, b) }},
		{"mmtprofile", func(a []string, b *bytes.Buffer) error { return RunProfile(a, b) }},
	} {
		var out bytes.Buffer
		if err := run.fn([]string{"-version"}, &out); err != nil {
			t.Fatalf("%s -version: %v", run.name, err)
		}
		if !strings.HasPrefix(out.String(), run.name+" ") || !strings.Contains(out.String(), "go1") {
			t.Errorf("%s -version output: %q", run.name, out.String())
		}
	}
	var out bytes.Buffer
	if _, err := runBench([]string{"-version"}, &out, io.Discard); err != nil {
		t.Fatalf("mmtbench -version: %v", err)
	}
	if !strings.HasPrefix(out.String(), "mmtbench ") {
		t.Errorf("mmtbench -version output: %q", out.String())
	}
}

// TestRunBenchWorkerTrace captures a runner timeline during a tiny bench
// run and checks it is a loadable Chrome trace containing job spans.
func TestRunBenchWorkerTrace(t *testing.T) {
	dir := t.TempDir()
	traceFile := filepath.Join(dir, "runner.json")
	var out bytes.Buffer
	if _, err := runBench([]string{"-only", "sec63", "-j", "2", "-trace-out", traceFile}, &out, nil); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Phase string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("worker trace invalid: %v", err)
	}
	var spans int
	for _, r := range doc.TraceEvents {
		if r.Phase == "X" {
			spans++
		}
	}
	if spans == 0 {
		t.Error("worker trace has no job spans")
	}
}
