package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"mmt/internal/cluster"
	"mmt/internal/obs"
	"mmt/internal/obs/span"
)

// RunTrace is the mmttrace command: it fetches one trace's spans from
// every process in the fleet — the router, each mmtserved node discovered
// via /v1/cluster, and any extra -sources — stitches them into one tree,
// and renders a text waterfall (and optionally a Chrome trace-event file).
// Without -trace it lists recent traces fleet-wide; -slowest N ranks them
// by duration instead of recency.
func RunTrace(args []string, stdout io.Writer) error {
	return runTrace(args, stdout, os.Stderr)
}

// runTrace is RunTrace with the warning stream exposed (for tests).
func runTrace(args []string, stdout, progress io.Writer) error {
	fs := flag.NewFlagSet("mmttrace", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		server  = fs.String("server", "http://127.0.0.1:8378", "router (or single mmtserved) base URL; fleet nodes are discovered via its /v1/cluster")
		sources = fs.String("sources", "", "extra comma-separated base URLs to also fetch spans from (e.g. an mmtcached)")
		traceID = fs.String("trace", "", "trace id to stitch and render (empty = list recent traces)")
		slowest = fs.Int("slowest", 0, "list the N slowest recent traces across the fleet instead of the newest")
		limit   = fs.Int("limit", 20, "how many traces to list without -slowest")
		chrome  = fs.String("chrome", "", "also write the stitched trace as Chrome trace-event JSON (open in Perfetto)")
		timeout = fs.Duration("timeout", 10*time.Second, "overall fetch timeout")
		version = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		printVersion(stdout, "mmttrace")
		return nil
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	eps := discoverEndpoints(ctx, *server, *sources, progress)

	if *traceID == "" {
		n := *limit
		if *slowest > 0 {
			n = *slowest
		}
		return listTraces(ctx, stdout, eps, *slowest > 0, n)
	}

	tree, err := fetchStitched(ctx, eps, *traceID, progress)
	if err != nil {
		return err
	}
	tree.WriteWaterfall(stdout)
	if *chrome != "" {
		if err := writeChromeTrace(*chrome, tree); err != nil {
			return err
		}
		if progress != nil {
			fmt.Fprintf(progress, "mmttrace: wrote Chrome trace %s\n", *chrome)
		}
	}
	return nil
}

// discoverEndpoints resolves the set of span rings to query: the -server
// itself, every node its /v1/cluster reports (when it is a router), and
// any extra -sources. Order is stable and duplicates collapse.
func discoverEndpoints(ctx context.Context, server, extra string, progress io.Writer) []string {
	seen := make(map[string]bool)
	var eps []string
	add := func(base string) {
		base = strings.TrimRight(strings.TrimSpace(base), "/")
		if base == "" || seen[base] {
			return
		}
		seen[base] = true
		eps = append(eps, base)
	}
	add(server)
	if cs, err := cluster.FetchClusterStats(ctx, nil, server); err == nil {
		for _, n := range cs.Nodes {
			add(n.Node.URL)
		}
	} else if progress != nil {
		fmt.Fprintf(progress, "mmttrace: no cluster behind %s (%v); querying it alone\n", server, err)
	}
	for _, s := range strings.Split(extra, ",") {
		add(s)
	}
	return eps
}

// fetchStitched gathers one trace's spans from every endpoint and
// stitches them. Dedup joiner spans link to the creator's trace; those
// linked traces are fetched too (bounded depth), so a joined submission
// renders alongside the execution that actually served it.
func fetchStitched(ctx context.Context, eps []string, traceID string, progress io.Writer) (*span.Tree, error) {
	var (
		records []span.Record
		hc      = &http.Client{}
		fetched = make(map[string]bool)
		failed  = make(map[string]bool)
		reached = 0
	)
	queue := []string{traceID}
	for depth := 0; len(queue) > 0 && depth < 4; depth++ {
		ids := queue
		queue = nil
		for _, id := range ids {
			if fetched[id] {
				continue
			}
			fetched[id] = true
			for _, ep := range eps {
				if failed[ep] {
					continue
				}
				sr, err := span.FetchSpans(ctx, hc, ep, id)
				if err != nil {
					failed[ep] = true
					if progress != nil {
						fmt.Fprintf(progress, "mmttrace: %s: %v (skipping)\n", ep, err)
					}
					continue
				}
				reached++
				records = append(records, sr.Spans...)
			}
		}
		for _, link := range span.Stitch(records).Links() {
			if !fetched[link.TraceID] {
				queue = append(queue, link.TraceID)
			}
		}
	}
	if reached == 0 {
		return nil, fmt.Errorf("no span endpoint reachable (tried %s)", strings.Join(eps, ", "))
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("no spans for trace %q on %d endpoints — traces live in a bounded in-memory ring, so old ones age out", traceID, reached)
	}
	return span.Stitch(records), nil
}

// fleetTrace is one trace's summaries merged across processes.
type fleetTrace struct {
	id        string
	root      string
	rootStart int64
	spans     int
	procs     int
	start     int64
	end       int64
}

// listTraces merges every process's recent-trace summaries and prints
// them: newest first, or the slowest (by fleet-wide wall-clock window)
// when bySlowest is set.
func listTraces(ctx context.Context, w io.Writer, eps []string, bySlowest bool, n int) error {
	merged := make(map[string]*fleetTrace)
	hc := &http.Client{}
	reached := 0
	for _, ep := range eps {
		tr, err := span.FetchTraces(ctx, hc, ep, 100)
		if err != nil {
			continue
		}
		reached++
		for _, s := range tr.Traces {
			m := merged[s.TraceID]
			if m == nil {
				m = &fleetTrace{id: s.TraceID, start: s.StartUNS}
				merged[s.TraceID] = m
			}
			m.spans += s.Spans
			m.procs++
			if s.StartUNS < m.start {
				m.start = s.StartUNS
			}
			if end := s.StartUNS + int64(s.DurMS*1e6); end > m.end {
				m.end = end
			}
			// The process that saw the trace first holds its true root
			// (e.g. router.submit rather than a node's serve.submit).
			if m.root == "" || s.StartUNS < m.rootStart {
				m.root, m.rootStart = s.Root, s.StartUNS
			}
		}
	}
	if reached == 0 {
		return errors.New("no span endpoint reachable (is the fleet running?)")
	}
	list := make([]*fleetTrace, 0, len(merged))
	for _, m := range merged { // mmtvet:ok — sorted below
		list = append(list, m)
	}
	sort.Slice(list, func(i, j int) bool {
		if bySlowest {
			if di, dj := list[i].end-list[i].start, list[j].end-list[j].start; di != dj {
				return di > dj
			}
		} else if list[i].start != list[j].start {
			return list[i].start > list[j].start
		}
		return list[i].id < list[j].id
	})
	if len(list) > n {
		list = list[:n]
	}
	fmt.Fprintf(w, "%-36s %12s %6s %6s  %s\n", "trace", "duration", "spans", "procs", "root")
	for _, m := range list {
		fmt.Fprintf(w, "%-36s %12s %6d %6d  %s\n",
			m.id, fmt.Sprintf("%.3fms", float64(m.end-m.start)/1e6), m.spans, m.procs, m.root)
	}
	return nil
}

// writeChromeTrace exports the stitched tree as Chrome trace-event JSON:
// one named track per fleet process, spans as complete events offset from
// the trace start.
func writeChromeTrace(path string, t *span.Tree) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	sink := obs.NewChromeTrace(f, obs.ChromeTraceConfig{
		Process:     "mmt fleet",
		TrackPrefix: "process",
		Meta: map[string]string{
			"version": Version(),
			"traces":  strings.Join(t.Traces, ","),
		},
	})
	tracks := make(map[string]int32, len(t.Services))
	for i, svc := range t.Services {
		tracks[svc] = int32(i)
		sink.NameTrack(int32(i), svc)
	}
	start, _ := t.Window()
	t.Walk(func(n *span.Node, _ int) {
		args := map[string]any{"trace": n.TraceID, "span": n.SpanID}
		for k, v := range n.Attrs { // mmtvet:ok — viewer payload, order-free
			args[k] = v
		}
		if n.LinkSpan != "" {
			args["link"] = n.LinkSpan + "@" + n.LinkTrace
		}
		dur := uint64(n.DurNS) / 1000
		if dur == 0 {
			dur = 1 // zero-width spans vanish in the viewer
		}
		sink.Span(tracks[n.Service], n.Name, uint64(n.StartUNS-start)/1000, dur, args)
	})
	if err := sink.Close(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
