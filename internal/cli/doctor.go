package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"mmt/internal/doctor"
	"mmt/internal/obs/flight"
)

// RunDoctor is the mmtdoctor command: fleet diagnostics. One invocation
// sweeps every process — the router, each node its /v1/cluster reports,
// and any extra -sources — pulling flight rings, span rings, metrics
// history, continuous-profiler captures and resolved configuration into a
// bundle directory, and prints a triage report. -watch instead polls
// health thresholds and exits non-zero on the first breach; -from-dump
// renders an on-disk flight dump (e.g. one a SIGQUIT'd node left behind).
func RunDoctor(args []string, stdout io.Writer) error {
	return runDoctor(args, stdout, os.Stderr)
}

// runDoctor is RunDoctor with the progress stream exposed for tests.
func runDoctor(args []string, stdout, progress io.Writer) error {
	fs := flag.NewFlagSet("mmtdoctor", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		server  = fs.String("server", "http://127.0.0.1:8378", "router (or single mmtserved) base URL; fleet nodes are discovered via its /v1/cluster")
		sources = fs.String("sources", "", "extra comma-separated base URLs to also collect from (e.g. an mmtcached)")
		out     = fs.String("out", "", "write the diagnosis bundle to this directory (empty = triage report only)")
		slowest = fs.Int("slowest", 3, "how many of the slowest recent traces to stitch into the bundle")
		top     = fs.Int("top", 10, "frames per merged profile report")
		last    = fs.Int("profile-last", 4, "merge only the newest N CPU captures per node")
		timeout = fs.Duration("timeout", 30*time.Second, "overall collection timeout (per round in -watch mode)")

		watch     = fs.Bool("watch", false, "poll health thresholds instead of collecting; exits non-zero on the first breach")
		every     = fs.Duration("every", 5*time.Second, "polling cadence in -watch mode")
		rounds    = fs.Int("rounds", 0, "stop -watch after this many clean rounds (0 = forever)")
		maxP99    = fs.Duration("max-job-p99", 0, "breach when any node's job latency p99 exceeds this (0 = unchecked)")
		maxQueue  = fs.Int("max-queue", 0, "breach when any node's queue depth exceeds this (0 = unchecked)")
		maxFailed = fs.Float64("max-failed-rate", 0, "breach when failed/(completed+failed) exceeds this, 0..1 (0 = unchecked)")
		fromDump  = fs.String("from-dump", "", "render this on-disk flight dump file and exit")
		version   = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		printVersion(stdout, "mmtdoctor")
		return nil
	}
	if *fromDump != "" {
		d, err := flight.ReadDump(*fromDump)
		if err != nil {
			return err
		}
		d.Render(stdout)
		return nil
	}

	var extra []string
	for _, s := range strings.Split(*sources, ",") {
		if s = strings.TrimSpace(s); s != "" {
			extra = append(extra, s)
		}
	}
	opts := doctor.Options{
		Server:      *server,
		Sources:     extra,
		SlowTraces:  *slowest,
		TopFrames:   *top,
		ProfileLast: *last,
		Version:     Version(),
		Progress:    progress,
	}

	if *watch {
		th := doctor.Thresholds{MaxJobP99: *maxP99, MaxQueue: *maxQueue, MaxFailedRate: *maxFailed}
		if !th.Enabled() {
			return fmt.Errorf("-watch needs at least one threshold (-max-job-p99, -max-queue, -max-failed-rate)")
		}
		return watchLoop(stdout, progress, opts, th, *every, *rounds, *timeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	b, err := doctor.Collect(ctx, opts)
	if err != nil {
		return err
	}
	if *out != "" {
		if err := b.Write(*out); err != nil {
			return fmt.Errorf("writing bundle: %w", err)
		}
		fmt.Fprintf(progress, "mmtdoctor: bundle written to %s (%d nodes, %d traces)\n",
			*out, len(b.Nodes), len(b.Traces))
	}
	b.Triage.WriteReport(stdout)
	return nil
}

// watchLoop polls the thresholds until a breach (error, non-zero exit) or
// the configured number of clean rounds.
func watchLoop(stdout, progress io.Writer, opts doctor.Options, th doctor.Thresholds,
	every time.Duration, rounds int, timeout time.Duration) error {

	if every <= 0 {
		every = 5 * time.Second
	}
	for round := 1; ; round++ {
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		vs, err := doctor.Probe(ctx, opts, th)
		cancel()
		if err != nil {
			return err
		}
		if len(vs) > 0 {
			for _, v := range vs {
				fmt.Fprintf(stdout, "mmtdoctor: BREACH %s\n", v)
			}
			return fmt.Errorf("%d threshold breach(es) on round %d", len(vs), round)
		}
		fmt.Fprintf(progress, "mmtdoctor: round %d clean\n", round)
		if rounds > 0 && round >= rounds {
			fmt.Fprintf(stdout, "mmtdoctor: %d clean round(s), all thresholds held\n", round)
			return nil
		}
		time.Sleep(every)
	}
}
