package cli

import (
	"fmt"
	"time"
)

// Flag validation shared by mmtsim/mmtbench/mmtserved/mmtload. The
// underlying layers tolerate some nonsense values in surprising ways (a
// negative -timeout times every job out instantly; a non-positive
// sampling period breaks the utilization ticker), so the commands reject
// them up front with a clear message instead.

// validateTimeout rejects negative wall-clock timeouts (0 disables).
func validateTimeout(d time.Duration) error {
	if d < 0 {
		return fmt.Errorf("-timeout must be >= 0 (0 disables the timeout), got %s", d)
	}
	return nil
}

// validateRetries rejects negative retry budgets (0 means no retries).
func validateRetries(n int) error {
	if n < 0 {
		return fmt.Errorf("-retries must be >= 0 (0 disables retries), got %d", n)
	}
	return nil
}

// validateSampleEvery rejects non-positive trace sampling periods.
func validateSampleEvery(d time.Duration) error {
	if d <= 0 {
		return fmt.Errorf("-sample-every must be positive, got %s", d)
	}
	return nil
}
