package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mmt/internal/cluster"
	"mmt/internal/obs"
	"mmt/internal/obs/span"
)

// RunRouter is the mmtrouter command: the fleet coordinator that
// consistent-hashes job submissions onto a ring of mmtserved backends so
// per-node single-flight dedup becomes fleet-wide dedup. It serves the
// same /v1 job API as mmtserved until SIGINT/SIGTERM, then exits.
func RunRouter(args []string, stdout io.Writer) error {
	return runRouter(args, stdout, os.Stderr, nil)
}

// runRouter is RunRouter with the progress stream exposed and an optional
// ready callback receiving the bound address (both for tests).
func runRouter(args []string, stdout, progress io.Writer, ready func(addr string)) error {
	fs := flag.NewFlagSet("mmtrouter", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		addr     = fs.String("addr", "127.0.0.1:8378", "listen address for the fleet job API")
		backends = fs.String("backends", "", "comma-separated mmtserved base URLs, each with an optional *weight suffix (e.g. http://10.0.0.1:8377*2,http://10.0.0.2:8377)")

		probeEvery   = fs.Duration("probe-every", time.Second, "health/queue-depth probe cadence")
		probeTimeout = fs.Duration("probe-timeout", 2*time.Second, "per-probe timeout")
		stealAt      = fs.Int("steal-threshold", 8, "queue depth at which an owner counts as hot and idle nodes pull its new keys")
		stealMax     = fs.Int("steal-max", 1, "maximum queue depth of a steal target")
		placementTTL = fs.Duration("placement-ttl", 5*time.Minute, "how long a key stays pinned to the node that received it")

		metricsAddr = fs.String("metrics-addr", "", "serve live metrics, expvar and pprof on this address")
		version     = fs.Bool("version", false, "print version and exit")
	)
	logf := addLogFlags(fs)
	dbg := addDebugFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		printVersion(stdout, "mmtrouter")
		return nil
	}
	logger, err := logf.logger(progress)
	if err != nil {
		return err
	}
	if *backends == "" {
		return errors.New("-backends is required (comma-separated mmtserved URLs)")
	}
	nodes, err := cluster.ParseNodes(*backends)
	if err != nil {
		return err
	}

	opts := cluster.RouterOptions{
		Nodes:          nodes,
		ProbeEvery:     *probeEvery,
		ProbeTimeout:   *probeTimeout,
		StealThreshold: *stealAt,
		StealMax:       *stealMax,
		PlacementTTL:   *placementTTL,
	}
	// The registry always exists: /metrics rides the main port for
	// mmtdoctor, and -metrics-addr additionally serves it on a side port.
	opts.Metrics = obs.NewRegistry()
	if *metricsAddr != "" {
		msrv, err := serveMetrics(*metricsAddr, opts.Metrics, progress)
		if err != nil {
			return err
		}
		defer msrv.Close()
	}
	// Bind before constructing the router: the tracer's service label
	// carries the resolved address, matching the nodes' span rings.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	service := "mmtrouter@" + ln.Addr().String()
	opts.Tracer = span.NewTracer(service, span.DefaultCapacity)
	st := dbg.build(service, fs, opts.Metrics, opts.Tracer, logger, progress)
	defer st.Close()
	logger = st.Wrap(logger)
	opts.Log = logger.With("service", "mmtrouter")
	opts.Flight = st.Flight
	opts.Debug = st.Handler
	rt, err := cluster.NewRouter(opts)
	if err != nil {
		ln.Close()
		return err
	}
	defer rt.Close()
	httpSrv := &http.Server{Handler: rt}
	if progress != nil {
		fmt.Fprintf(progress, "mmtrouter %s routing on http://%s/v1 across %d backends\n",
			Version(), ln.Addr(), len(nodes))
		st.announce(progress, ln.Addr().String())
	}
	if ready != nil {
		ready(ln.Addr().String())
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)

	select {
	case err := <-serveErr:
		return err
	case sig := <-sigc:
		if progress != nil {
			fmt.Fprintf(progress, "mmtrouter: received %s, shutting down\n", sig)
		}
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		httpSrv.Shutdown(sctx) //nolint:errcheck // in-flight proxies get a bounded wait
		scancel()
		if progress != nil {
			fmt.Fprintln(progress, "mmtrouter: drained, bye")
		}
		return nil
	}
}
