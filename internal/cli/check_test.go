package cli

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunCheckNegativeFixtures: each seeded-defect fixture must make
// mmtcheck exit non-zero and name the defect.
func TestRunCheckNegativeFixtures(t *testing.T) {
	cases := []struct {
		file string
		code string
	}{
		{"bad_branch_target.s", "branch-target"},
		{"bad_falls_off_end.s", "falls-off-end"},
		{"bad_unreachable.s", "unreachable"},
		{"bad_read_before_write.s", "read-before-write"},
		{"bad_store_to_text.s", "store-to-text"},
		{"bad_oob_access.s", "oob-access"},
		{"bad_dead_store.s", "dead-store"},
		{"bad_unbounded_loop.s", "unbounded-loop"},
		{"bad_div_zero.s", "div-by-zero"},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			var out bytes.Buffer
			err := RunCheck([]string{"-src", filepath.Join("testdata", tc.file), "-report=false"}, &out)
			if err == nil {
				t.Fatalf("seeded defect accepted:\n%s", out.String())
			}
			if !strings.Contains(out.String(), tc.code) {
				t.Errorf("output does not name %s:\n%s", tc.code, out.String())
			}
		})
	}
}

// TestRunCheckAbsintFixturesFailOnError: the abstract-interpretation
// lints report their seeded defects at error severity, so they must trip
// even the strictest gate.
func TestRunCheckAbsintFixturesFailOnError(t *testing.T) {
	for _, file := range []string{"bad_oob_access.s", "bad_dead_store.s", "bad_unbounded_loop.s", "bad_div_zero.s"} {
		t.Run(file, func(t *testing.T) {
			var out bytes.Buffer
			err := RunCheck([]string{"-src", filepath.Join("testdata", file), "-report=false", "-fail-on", "error"}, &out)
			if err == nil {
				t.Fatalf("seeded defect accepted at -fail-on error:\n%s", out.String())
			}
		})
	}
}

// TestRunCheckSARIF: the SARIF surface is valid 2.1.0-shaped JSON with
// one result per finding and a rule entry per distinct code.
func TestRunCheckSARIF(t *testing.T) {
	var out bytes.Buffer
	err := RunCheck([]string{"-src", filepath.Join("testdata", "bad_div_zero.s"), "-format", "sarif", "-fail-on", "never"}, &out)
	if err != nil {
		t.Fatalf("sarif run failed: %v", err)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out.Bytes(), &log); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("not a single-run SARIF 2.1.0 log: version=%q runs=%d", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "mmtcheck" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	found := false
	for _, res := range run.Results {
		if res.RuleID == "div-by-zero" && res.Level == "error" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no error-level div-by-zero result:\n%s", out.String())
	}
	ruleSeen := false
	for _, r := range run.Tool.Driver.Rules {
		if r.ID == "div-by-zero" {
			ruleSeen = true
		}
	}
	if !ruleSeen {
		t.Error("div-by-zero missing from driver rules")
	}
}

func TestRunCheckCleanSource(t *testing.T) {
	var out bytes.Buffer
	if err := RunCheck([]string{"-src", filepath.Join("testdata", "clean.s")}, &out); err != nil {
		t.Fatalf("clean program rejected: %v\n%s", err, out.String())
	}
}

// TestRunCheckFailOnNever: findings are still printed, but the exit
// stays zero.
func TestRunCheckFailOnNever(t *testing.T) {
	var out bytes.Buffer
	err := RunCheck([]string{"-src", filepath.Join("testdata", "bad_unreachable.s"), "-fail-on", "never", "-report=false"}, &out)
	if err != nil {
		t.Fatalf("-fail-on never still failed: %v", err)
	}
	if !strings.Contains(out.String(), "unreachable") {
		t.Errorf("finding not printed:\n%s", out.String())
	}
}

// TestRunCheckAllWorkloads is the acceptance gate: every shipped
// workload passes the pre-flight check clean.
func TestRunCheckAllWorkloads(t *testing.T) {
	var out bytes.Buffer
	if err := RunCheck([]string{"-all", "-report=false"}, &out); err != nil {
		t.Fatalf("shipped workload failed mmtcheck: %v\n%s", err, out.String())
	}
}

func TestRunCheckJSON(t *testing.T) {
	var out bytes.Buffer
	err := RunCheck([]string{"-src", filepath.Join("testdata", "bad_falls_off_end.s"), "-format", "json"}, &out)
	if err == nil {
		t.Fatal("seeded defect accepted")
	}
	var results []CheckResult
	if jerr := json.Unmarshal(out.Bytes(), &results); jerr != nil {
		t.Fatalf("output is not JSON: %v\n%s", jerr, out.String())
	}
	if len(results) != 1 || len(results[0].Findings) == 0 {
		t.Fatalf("JSON carries no findings: %s", out.String())
	}
	if results[0].Findings[0].Code != "falls-off-end" {
		t.Errorf("finding code = %q, want falls-off-end", results[0].Findings[0].Code)
	}
}

// TestRunCheckAgainstProfile drives the full static-vs-dynamic loop
// through the CLI: simulate with attribution, then cross-validate the
// written profile. Loop-carried remerges are informational, so a seed
// workload must come back clean at the default warning threshold.
func TestRunCheckAgainstProfile(t *testing.T) {
	profPath := filepath.Join(t.TempDir(), "run.json")
	var out bytes.Buffer
	if err := RunSim([]string{"-app", "libsvm", "-preset", "MMT-FXR", "-threads", "2", "-profile-out", profPath}, &out); err != nil {
		t.Fatalf("sim: %v", err)
	}
	out.Reset()
	if err := RunCheck([]string{"-app", "libsvm", "-against-profile", profPath, "-report=false"}, &out); err != nil {
		t.Fatalf("cross-validation failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "cross-validation") {
		t.Errorf("no cross-validation output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "spearman") {
		t.Errorf("no predicted-vs-observed correlation line:\n%s", out.String())
	}

	// The -min-correlation gate: an unattainable floor must fail the run
	// with a message naming the observed coefficient.
	out.Reset()
	err := RunCheck([]string{"-app", "libsvm", "-against-profile", profPath, "-report=false", "-min-correlation", "1.01"}, &out)
	if err == nil {
		t.Fatal("-min-correlation 1.01 accepted")
	}
	if !strings.Contains(err.Error(), "spearman") {
		t.Errorf("gate error does not name the correlation: %v", err)
	}
}

func TestRunCheckFlagErrors(t *testing.T) {
	var out bytes.Buffer
	if err := RunCheck([]string{}, &out); err == nil {
		t.Error("no target accepted")
	}
	if err := RunCheck([]string{"-all", "-app", "libsvm"}, &out); err == nil {
		t.Error("-all with -app accepted")
	}
	if err := RunCheck([]string{"-app", "libsvm", "-format", "yaml"}, &out); err == nil {
		t.Error("bad format accepted")
	}
	if err := RunCheck([]string{"-app", "libsvm", "-fail-on", "fatal"}, &out); err == nil {
		t.Error("bad severity accepted")
	}
}
