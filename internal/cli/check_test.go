package cli

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunCheckNegativeFixtures: each seeded-defect fixture must make
// mmtcheck exit non-zero and name the defect.
func TestRunCheckNegativeFixtures(t *testing.T) {
	cases := []struct {
		file string
		code string
	}{
		{"bad_branch_target.s", "branch-target"},
		{"bad_falls_off_end.s", "falls-off-end"},
		{"bad_unreachable.s", "unreachable"},
		{"bad_read_before_write.s", "read-before-write"},
		{"bad_store_to_text.s", "store-to-text"},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			var out bytes.Buffer
			err := RunCheck([]string{"-src", filepath.Join("testdata", tc.file), "-report=false"}, &out)
			if err == nil {
				t.Fatalf("seeded defect accepted:\n%s", out.String())
			}
			if !strings.Contains(out.String(), tc.code) {
				t.Errorf("output does not name %s:\n%s", tc.code, out.String())
			}
		})
	}
}

func TestRunCheckCleanSource(t *testing.T) {
	var out bytes.Buffer
	if err := RunCheck([]string{"-src", filepath.Join("testdata", "clean.s")}, &out); err != nil {
		t.Fatalf("clean program rejected: %v\n%s", err, out.String())
	}
}

// TestRunCheckFailOnNever: findings are still printed, but the exit
// stays zero.
func TestRunCheckFailOnNever(t *testing.T) {
	var out bytes.Buffer
	err := RunCheck([]string{"-src", filepath.Join("testdata", "bad_unreachable.s"), "-fail-on", "never", "-report=false"}, &out)
	if err != nil {
		t.Fatalf("-fail-on never still failed: %v", err)
	}
	if !strings.Contains(out.String(), "unreachable") {
		t.Errorf("finding not printed:\n%s", out.String())
	}
}

// TestRunCheckAllWorkloads is the acceptance gate: every shipped
// workload passes the pre-flight check clean.
func TestRunCheckAllWorkloads(t *testing.T) {
	var out bytes.Buffer
	if err := RunCheck([]string{"-all", "-report=false"}, &out); err != nil {
		t.Fatalf("shipped workload failed mmtcheck: %v\n%s", err, out.String())
	}
}

func TestRunCheckJSON(t *testing.T) {
	var out bytes.Buffer
	err := RunCheck([]string{"-src", filepath.Join("testdata", "bad_falls_off_end.s"), "-format", "json"}, &out)
	if err == nil {
		t.Fatal("seeded defect accepted")
	}
	var results []CheckResult
	if jerr := json.Unmarshal(out.Bytes(), &results); jerr != nil {
		t.Fatalf("output is not JSON: %v\n%s", jerr, out.String())
	}
	if len(results) != 1 || len(results[0].Findings) == 0 {
		t.Fatalf("JSON carries no findings: %s", out.String())
	}
	if results[0].Findings[0].Code != "falls-off-end" {
		t.Errorf("finding code = %q, want falls-off-end", results[0].Findings[0].Code)
	}
}

// TestRunCheckAgainstProfile drives the full static-vs-dynamic loop
// through the CLI: simulate with attribution, then cross-validate the
// written profile. Loop-carried remerges are informational, so a seed
// workload must come back clean at the default warning threshold.
func TestRunCheckAgainstProfile(t *testing.T) {
	profPath := filepath.Join(t.TempDir(), "run.json")
	var out bytes.Buffer
	if err := RunSim([]string{"-app", "libsvm", "-preset", "MMT-FXR", "-threads", "2", "-profile-out", profPath}, &out); err != nil {
		t.Fatalf("sim: %v", err)
	}
	out.Reset()
	if err := RunCheck([]string{"-app", "libsvm", "-against-profile", profPath, "-report=false"}, &out); err != nil {
		t.Fatalf("cross-validation failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "cross-validation") {
		t.Errorf("no cross-validation output:\n%s", out.String())
	}
}

func TestRunCheckFlagErrors(t *testing.T) {
	var out bytes.Buffer
	if err := RunCheck([]string{}, &out); err == nil {
		t.Error("no target accepted")
	}
	if err := RunCheck([]string{"-all", "-app", "libsvm"}, &out); err == nil {
		t.Error("-all with -app accepted")
	}
	if err := RunCheck([]string{"-app", "libsvm", "-format", "yaml"}, &out); err == nil {
		t.Error("bad format accepted")
	}
	if err := RunCheck([]string{"-app", "libsvm", "-fail-on", "fatal"}, &out); err == nil {
		t.Error("bad severity accepted")
	}
}
