package cli

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// startDaemon launches one CLI daemon (runServe/runRouter/runCached) and
// returns its bound address and exit channel.
func startDaemon(t *testing.T, name string, run func(args []string, stdout, progress io.Writer, ready func(string)) error,
	args []string, progress io.Writer) (addr string, done chan error) {
	t.Helper()
	addrc := make(chan string, 1)
	done = make(chan error, 1)
	var stdout syncBuffer
	go func() {
		done <- run(args, &stdout, progress, func(a string) { addrc <- a })
	}()
	select {
	case addr = <-addrc:
	case err := <-done:
		t.Fatalf("%s exited before listening: %v (stdout: %s)", name, err, stdout.String())
	case <-time.After(30 * time.Second):
		t.Fatalf("%s never became ready", name)
	}
	return addr, done
}

// TestClusterEndToEnd boots the whole fleet in-process — mmtcached, two
// mmtserved nodes tiering into it, mmtrouter across them — drives it with
// mmtload -cluster, and then proves the acceptance scenario: a cold node
// restart (fresh cache dir, same remote cache) serves previously
// simulated results without re-simulating. One SIGTERM to the test
// process drains every daemon, the lifecycle the CI cluster-smoke step
// exercises against the built binaries.
func TestClusterEndToEnd(t *testing.T) {
	var progress syncBuffer

	cacheDir := t.TempDir()
	cachedAddr, cachedDone := startDaemon(t, "mmtcached", runCached,
		[]string{"-addr", "127.0.0.1:0", "-dir", cacheDir}, &progress)

	dirA, dirB := t.TempDir(), t.TempDir()
	addrA, doneA := startDaemon(t, "mmtserved A", runServe,
		[]string{"-addr", "127.0.0.1:0", "-j", "2", "-cache-dir", dirA,
			"-remote-cache", "http://" + cachedAddr}, &progress)
	addrB, doneB := startDaemon(t, "mmtserved B", runServe,
		[]string{"-addr", "127.0.0.1:0", "-j", "2", "-cache-dir", dirB,
			"-remote-cache", "http://" + cachedAddr}, &progress)

	routerAddr, routerDone := startDaemon(t, "mmtrouter", runRouter,
		[]string{"-addr", "127.0.0.1:0", "-probe-every", "100ms",
			"-backends", "http://" + addrA + ",http://" + addrB}, &progress)

	// A duplicate-heavy load through the router: the fleet must collapse
	// the stream into very few simulations.
	var loadOut bytes.Buffer
	if err := runLoad([]string{"-server", "http://" + routerAddr, "-cluster",
		"-n", "10", "-c", "5", "-dup", "0.8", "-seed", "4"}, &loadOut, io.Discard); err != nil {
		t.Fatalf("mmtload -cluster: %v\n%s", err, loadOut.String())
	}
	out := loadOut.String()
	for _, want := range []string{"0 failed", "cluster: fleet dedup ratio", "node", "jobs/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("cluster load report missing %q:\n%s", want, out)
		}
	}

	// mmttrace stitches one submission's trace across the router, the
	// owning node and the cache daemon — chasing the dedup link when job
	// 0 happened to join another flight — and exports a Chrome timeline.
	var traceOut bytes.Buffer
	chromePath := filepath.Join(t.TempDir(), "fleet-trace.json")
	if err := runTrace([]string{"-server", "http://" + routerAddr,
		"-sources", "http://" + cachedAddr, "-trace", "load-4-0",
		"-chrome", chromePath}, &traceOut, io.Discard); err != nil {
		t.Fatalf("mmttrace: %v\n%s", err, traceOut.String())
	}
	wf := traceOut.String()
	if !strings.Contains(wf, "from 3 processes") {
		t.Errorf("waterfall not stitched from 3 processes:\n%s", wf)
	}
	for _, want := range []string{"router.submit", "mmtserved@", "mmtcached@"} {
		if !strings.Contains(wf, want) {
			t.Errorf("waterfall missing %q:\n%s", want, wf)
		}
	}
	if raw, err := os.ReadFile(chromePath); err != nil || !bytes.Contains(raw, []byte("traceEvents")) {
		t.Errorf("chrome trace not written: %v", err)
	}

	// The fleet-wide listing ranks recent traces by duration.
	traceOut.Reset()
	if err := runTrace([]string{"-server", "http://" + routerAddr, "-slowest", "5"},
		&traceOut, io.Discard); err != nil {
		t.Fatalf("mmttrace -slowest: %v", err)
	}
	if !strings.Contains(traceOut.String(), "load-4-") {
		t.Errorf("slowest listing missing load traces:\n%s", traceOut.String())
	}

	// Cold restart: node A goes away, its local cache is wiped, and a
	// fresh node with the same remote tier replays the workload without a
	// single new simulation.
	restartLoad := func(server string, expectSimulated string) {
		t.Helper()
		var buf bytes.Buffer
		if err := runLoad([]string{"-server", server, "-n", "10", "-c", "5",
			"-dup", "0.8", "-seed", "4"}, &buf, io.Discard); err != nil {
			t.Fatalf("mmtload against %s: %v\n%s", server, err, buf.String())
		}
		if !strings.Contains(buf.String(), expectSimulated) {
			t.Errorf("load against %s: want %q in report:\n%s", server, expectSimulated, buf.String())
		}
	}
	coldDir := t.TempDir()
	coldAddr, coldDone := startDaemon(t, "mmtserved cold", runServe,
		[]string{"-addr", "127.0.0.1:0", "-j", "2", "-cache-dir", coldDir,
			"-remote-cache", "http://" + cachedAddr}, &progress)
	restartLoad("http://"+coldAddr, "simulated=0 ")

	// And without the remote tier the same cold start would have to
	// simulate — proving the hits above came from mmtcached, not memo.
	coldestAddr, coldestDone := startDaemon(t, "mmtserved coldest", runServe,
		[]string{"-addr", "127.0.0.1:0", "-j", "2", "-cache-dir", t.TempDir()}, &progress)
	restartLoad("http://"+coldestAddr, "dedup_joins=")

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	for name, done := range map[string]chan error{
		"mmtcached": cachedDone, "mmtserved A": doneA, "mmtserved B": doneB,
		"mmtrouter": routerDone, "mmtserved cold": coldDone, "mmtserved coldest": coldestDone,
	} {
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("%s exit: %v", name, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("%s did not exit after SIGTERM", name)
		}
	}
	got := progress.String()
	// The daemons' structured logs stamp routing decisions with the
	// trace id (default text format, written to the progress stream).
	for _, want := range []string{"mmtrouter: drained, bye", "mmtcached:", "entries",
		`msg="job routed"`, "trace=load-4-"} {
		if !strings.Contains(got, want) {
			t.Errorf("progress missing %q:\n%s", want, got)
		}
	}
}

func TestRouterCachedVersionAndFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := runRouter([]string{"-version"}, &out, io.Discard, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "mmtrouter") {
		t.Errorf("version output = %q", out.String())
	}
	out.Reset()
	if err := runCached([]string{"-version"}, &out, io.Discard, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "mmtcached") {
		t.Errorf("version output = %q", out.String())
	}
	if err := runRouter(nil, io.Discard, io.Discard, nil); err == nil {
		t.Error("mmtrouter without -backends accepted")
	}
	if err := runCached(nil, io.Discard, io.Discard, nil); err == nil {
		t.Error("mmtcached without -dir accepted")
	}
	if err := runRouter([]string{"-backends", "not-a-url"}, io.Discard, io.Discard, nil); err == nil {
		t.Error("mmtrouter accepted a malformed backend list")
	}
}
