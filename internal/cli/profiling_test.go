package cli

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mmt/internal/prof"
)

// TestRunSimProfileOut is the end-to-end profiling path: one documented
// command produces the per-PC table on stdout and a parseable profile
// JSON on disk, and the cache round trip preserves the profile.
func TestRunSimProfileOut(t *testing.T) {
	dir := t.TempDir()
	pfile := filepath.Join(dir, "profile.json")
	ofile := filepath.Join(dir, "outcome.json")
	var out bytes.Buffer
	err := RunSim([]string{"-app", "twolf", "-threads", "2",
		"-cache-dir", filepath.Join(dir, "cache"),
		"-profile-out", pfile, "-profile-top", "5", "-out", ofile}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"attribution profile (schema 2)", "CPI stack", "base", "top 5 sites", "pc"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}

	b, err := os.ReadFile(pfile)
	if err != nil {
		t.Fatal(err)
	}
	p, err := prof.ParseProfile(b)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cycles == 0 || len(p.Sites) == 0 {
		t.Errorf("empty profile: %d cycles, %d sites", p.Cycles, len(p.Sites))
	}

	// Warm path: the second run serves the attributed outcome from the
	// persistent cache, profile included.
	var warm bytes.Buffer
	pfile2 := filepath.Join(dir, "profile2.json")
	err = RunSim([]string{"-app", "twolf", "-threads", "2",
		"-cache-dir", filepath.Join(dir, "cache"),
		"-profile-out", pfile2, "-profile-top", "5"}, &warm)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(pfile2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Error("cached profile differs from the simulated one")
	}
}

// TestRunProfileFromRun: mmtprofile renders and diffs profile files, and
// accepts an outcome file with an embedded profile.
func TestRunProfileFromRun(t *testing.T) {
	dir := t.TempDir()
	pfile := filepath.Join(dir, "profile.json")
	ofile := filepath.Join(dir, "outcome.json")
	var sink bytes.Buffer
	err := RunSim([]string{"-app", "libsvm", "-threads", "2",
		"-profile-out", pfile, "-out", ofile}, &sink)
	if err != nil {
		t.Fatal(err)
	}

	var report bytes.Buffer
	if err := RunProfile([]string{"-from-run", pfile, "-top", "3"}, &report); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report.String(), "attribution profile (schema 2)") {
		t.Errorf("render failed:\n%s", report.String())
	}

	// The -out outcome embeds the same profile; -from-run accepts either.
	var fromOutcome bytes.Buffer
	if err := RunProfile([]string{"-from-run", ofile, "-top", "3"}, &fromOutcome); err != nil {
		t.Fatal(err)
	}
	if fromOutcome.String() != report.String() {
		t.Error("outcome-embedded profile rendered differently from the bare profile")
	}

	var diff bytes.Buffer
	if err := RunProfile([]string{"-from-run", pfile, "-diff", pfile, "-top", "3"}, &diff); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(diff.String(), "profile diff:") || !strings.Contains(diff.String(), "+0.0%") {
		t.Errorf("self-diff wrong:\n%s", diff.String())
	}

	if err := RunProfile([]string{"-diff", pfile}, &sink); err == nil {
		t.Error("-diff without -from-run accepted")
	}
	if err := RunProfile([]string{"-from-run", filepath.Join(dir, "nope.json")}, &sink); err == nil {
		t.Error("missing profile file accepted")
	}
}

// TestRunBenchJSONAndCompare: -bench-json emits the performance artifact
// (auto-named in a directory), and -bench-compare diffs two of them.
func TestRunBenchJSONAndCompare(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if _, err := runBench([]string{"-only", "fig5a", "-j", "4", "-bench-json", dir}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "BENCH_1.json")
	f, err := readBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Schema != BenchSchema || len(f.Experiments) == 0 {
		t.Fatalf("bench file: schema %d, %d experiments", f.Schema, len(f.Experiments))
	}
	for _, e := range f.Experiments {
		if e.Name == "" || e.Key == "" || e.Cycles == 0 || e.IPC <= 0 {
			t.Errorf("incomplete entry: %+v", e)
		}
		if e.CacheHitRatio <= 0 || e.CacheHitRatio > 1 {
			t.Errorf("cache hit ratio %f out of range for %s", e.CacheHitRatio, e.Name)
		}
	}

	var cmp bytes.Buffer
	if _, err := runBench([]string{"-bench-compare", path + "," + path}, &cmp, io.Discard); err != nil {
		t.Fatal(err)
	}
	s := cmp.String()
	if !strings.Contains(s, "bench compare:") || !strings.Contains(s, "+0.0%") ||
		!strings.Contains(s, f.Experiments[0].Name) {
		t.Errorf("compare output wrong:\n%s", s)
	}

	var sink bytes.Buffer
	if _, err := runBench([]string{"-bench-compare", path}, &sink, io.Discard); err == nil {
		t.Error("-bench-compare without two files accepted")
	}
	if err := BenchCompare(&sink, path, filepath.Join(dir, "nope.json")); err == nil {
		t.Error("missing compare file accepted")
	}
}

// TestFlagValidation: nonsense operational flags fail fast with a clear
// message instead of surprising behavior downstream.
func TestFlagValidation(t *testing.T) {
	var sink bytes.Buffer
	if err := RunSim([]string{"-app", "libsvm", "-timeout", "-1s"}, &sink); err == nil ||
		!strings.Contains(err.Error(), "-timeout") {
		t.Errorf("mmtsim negative timeout: %v", err)
	}
	if _, err := runBench([]string{"-only", "table3", "-timeout", "-1s"}, &sink, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "-timeout") {
		t.Errorf("mmtbench negative timeout: %v", err)
	}
	if _, err := runBench([]string{"-only", "table3", "-retries", "-2"}, &sink, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "-retries") {
		t.Errorf("mmtbench negative retries: %v", err)
	}
	if _, err := runBench([]string{"-only", "table3", "-trace-out", "t.json", "-sample-every", "0s"}, &sink, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "-sample-every") {
		t.Errorf("mmtbench zero sample-every: %v", err)
	}
	if err := runServe([]string{"-retries", "-1"}, &sink, io.Discard, nil); err == nil ||
		!strings.Contains(err.Error(), "-retries") {
		t.Errorf("mmtserved negative retries: %v", err)
	}
	if err := runServe([]string{"-timeout", "-5s"}, &sink, io.Discard, nil); err == nil ||
		!strings.Contains(err.Error(), "-timeout") {
		t.Errorf("mmtserved negative timeout: %v", err)
	}
	if err := runServe([]string{"-events-out", "e.jsonl", "-sample-every", "-1s"}, &sink, io.Discard, nil); err == nil ||
		!strings.Contains(err.Error(), "-sample-every") {
		t.Errorf("mmtserved negative sample-every: %v", err)
	}
	if err := runLoad([]string{"-retries", "-3"}, &sink, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "-retries") {
		t.Errorf("mmtload negative retries: %v", err)
	}
	if err := runLoad([]string{"-profile-out", "p.json"}, &sink, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "-attribution") {
		t.Errorf("mmtload profile-out without attribution: %v", err)
	}
}

// TestRunBenchProfileOutNeedsTimingRuns: -profile-out on an artifact set
// with no timing simulations is an error, not an empty file.
func TestRunBenchProfileOutNeedsTimingRuns(t *testing.T) {
	dir := t.TempDir()
	var sink bytes.Buffer
	_, err := runBench([]string{"-only", "table3", "-profile-out", filepath.Join(dir, "p.json")}, &sink, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "no attributed timing experiment") {
		t.Errorf("bench profile without timing runs: %v", err)
	}
}

// TestBenchCompareGate: the cycle-regression gate fails only when a
// matched experiment's cycles grow beyond the threshold, and the CLI
// rejects a gate without a comparison.
func TestBenchCompareGate(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, cycles uint64) string {
		f := BenchFile{Schema: BenchSchema, Experiments: []BenchEntry{
			{Name: "libsvm/Base/2T", Key: "k1", Cycles: cycles, IPC: 2, CacheHitRatio: 0.9},
			{Name: "twolf/Base/2T", Key: "k2", Cycles: 1000, IPC: 2, CacheHitRatio: 0.9},
		}}
		path := filepath.Join(dir, name)
		if err := writeBenchJSON(path, f); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := write("base.json", 1000)
	slower := write("slower.json", 1080) // +8%
	faster := write("faster.json", 900)

	var out bytes.Buffer
	if err := BenchCompareGate(&out, base, slower, 5); err == nil {
		t.Error("8% cycle regression passed a 5% gate")
	} else if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("gate failure not reported:\n%s", out.String())
	}
	out.Reset()
	if err := BenchCompareGate(&out, base, slower, 10); err != nil {
		t.Errorf("8%% regression failed a 10%% gate: %v", err)
	}
	if err := BenchCompareGate(&out, base, faster, 5); err != nil {
		t.Errorf("improvement failed the gate: %v", err)
	}
	// Report-only mode never fails.
	if err := BenchCompareGate(&out, base, slower, 0); err != nil {
		t.Errorf("report-only compare failed: %v", err)
	}

	var sink bytes.Buffer
	if _, err := runBench([]string{"-bench-compare", base + "," + slower, "-bench-fail-over", "5"}, &sink, io.Discard); err == nil {
		t.Error("CLI gate passed a regression")
	}
	if _, err := runBench([]string{"-bench-fail-over", "5"}, &sink, io.Discard); err == nil {
		t.Error("-bench-fail-over without -bench-compare accepted")
	}
	if _, err := runBench([]string{"-bench-compare", base + "," + slower, "-bench-fail-over", "-1"}, &sink, io.Discard); err == nil {
		t.Error("negative -bench-fail-over accepted")
	}
}
