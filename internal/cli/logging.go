package cli

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
)

// logOptions carries the structured-logging flags every daemon shares:
// -log-format picks the encoding, -log-level the floor. Request-scoped
// lines stamp the trace and span ids, so a log line and a waterfall row
// from the same hop grep to each other.
type logOptions struct {
	format *string
	level  *string
}

// addLogFlags registers -log-format and -log-level on fs.
func addLogFlags(fs *flag.FlagSet) logOptions {
	return logOptions{
		format: fs.String("log-format", "text", "structured log encoding: text or json"),
		level:  fs.String("log-level", "info", "minimum log level: debug, info, warn or error"),
	}
}

// logger builds the logger behind the flags, writing to w — the daemon's
// progress stream, so stdout stays reserved for results. A nil w
// silences logging entirely.
func (lo logOptions) logger(w io.Writer) (*slog.Logger, error) {
	if w == nil {
		w = io.Discard
	}
	var level slog.Level
	switch *lo.level {
	case "debug":
		level = slog.LevelDebug
	case "info":
		level = slog.LevelInfo
	case "warn":
		level = slog.LevelWarn
	case "error":
		level = slog.LevelError
	default:
		return nil, fmt.Errorf("invalid -log-level %q (debug, info, warn or error)", *lo.level)
	}
	hopts := &slog.HandlerOptions{Level: level}
	switch *lo.format {
	case "text":
		return slog.New(slog.NewTextHandler(w, hopts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, hopts)), nil
	default:
		return nil, fmt.Errorf("invalid -log-format %q (text or json)", *lo.format)
	}
}
