package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"

	"mmt/internal/dse"
	"mmt/internal/obs"
	"mmt/internal/runner"
	"mmt/internal/workloads"
)

// RunDSE is the mmtdse command: explore the MMT configuration space and
// write a Pareto study artifact. The artifact goes to -out (or stdout);
// progress streams to stderr so the artifact bytes stay identical across
// worker counts and backends.
func RunDSE(args []string, stdout io.Writer) error {
	return runDSE(args, stdout, os.Stderr)
}

// runDSE is RunDSE with the progress stream exposed for tests.
func runDSE(args []string, stdout, progress io.Writer) error {
	fs := flag.NewFlagSet("mmtdse", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		space = fs.String("space", "default", "search space: a builtin ("+
			strings.Join(dse.Builtins(), ", ")+") or a JSON spec file")
		seed      = fs.Uint64("seed", 1, "sampler seed (same spec+seed = same study, byte for byte)")
		budget    = fs.Int("budget", 0, "max (point,rung) evaluations (0 = unbounded)")
		workloadL = fs.String("workloads", "", "comma-separated workload subset (default: the space's list, else all "+
			fmt.Sprint(len(workloads.Names()))+" kernels)")
		server      = fs.String("server", "", "evaluate on this mmtserved/mmtrouter base URL instead of in-process")
		out         = fs.String("out", "", "study artifact path (also the resume checkpoint; empty = stdout, no checkpoints)")
		resume      = fs.String("resume", "", "reuse results from this prior (partial or complete) study artifact")
		render      = fs.String("render", "", "render the frontier table of an existing study artifact and exit")
		jobs        = fs.Int("j", runtime.NumCPU(), "parallel evaluations (local backend also sizes its worker pool)")
		cacheDir    = fs.String("cache-dir", "", "persistent result cache directory for the local backend (empty = disabled)")
		metricsAddr = fs.String("metrics-addr", "", "serve live mmt_dse_* metrics, expvar and pprof on this address")
		rank        = fs.String("rank", "", "override the space's static ranker: on orders rung 0 by the absint cost model, off disables it (default: the space decides)")
		version     = fs.Bool("version", false, "print version and exit")
	)
	logf := addLogFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		printVersion(stdout, "mmtdse")
		return nil
	}
	logger, err := logf.logger(progress)
	if err != nil {
		return err
	}
	if *render != "" {
		st, err := dse.LoadStudy(*render)
		if err != nil {
			return err
		}
		st.WriteFrontier(stdout)
		return nil
	}

	spec, err := dse.LoadSpec(*space)
	if err != nil {
		return err
	}
	var appList []string
	if *workloadL != "" {
		for _, name := range strings.Split(*workloadL, ",") {
			name = strings.TrimSpace(name)
			if _, ok := workloads.ByName(name); !ok {
				return fmt.Errorf("unknown workload %q (have: %s)", name, strings.Join(workloads.Names(), ", "))
			}
			appList = append(appList, name)
		}
	}
	if *jobs < 1 {
		return fmt.Errorf("-j must be at least 1")
	}
	if *budget < 0 {
		return fmt.Errorf("-budget must be non-negative")
	}
	switch *rank {
	case "":
	case "on":
		if spec.Filter == nil {
			spec.Filter = &dse.FilterSpec{}
		}
		spec.Filter.Rank = true
	case "off":
		if spec.Filter != nil {
			spec.Filter.Rank = false
		}
	default:
		return fmt.Errorf("-rank must be on or off (got %q)", *rank)
	}

	opts := dse.Options{
		Spec:           spec,
		Seed:           *seed,
		Budget:         *budget,
		Workloads:      appList,
		Concurrency:    *jobs,
		Progress:       progress,
		Log:            logger.With("service", "mmtdse"),
		CheckpointPath: *out,
	}
	if *metricsAddr != "" {
		opts.Metrics = obs.NewRegistry()
		srv, err := serveMetrics(*metricsAddr, opts.Metrics, progress)
		if err != nil {
			return err
		}
		defer srv.Close()
	}
	if *resume != "" {
		prior, err := dse.LoadStudy(*resume)
		if err != nil {
			return fmt.Errorf("loading resume study: %w", err)
		}
		opts.Resume = prior
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *server != "" {
		if *cacheDir != "" {
			return fmt.Errorf("-cache-dir only applies to the local backend (the server has its own cache)")
		}
		opts.Backend = dse.NewServerBackend(*server)
	} else {
		be, err := dse.NewLocalBackend(ctx, runner.Options{
			Workers:  *jobs,
			CacheDir: *cacheDir,
			Retries:  1,
			Progress: progress,
			Metrics:  opts.Metrics,
		})
		if err != nil {
			return err
		}
		defer be.Close()
		opts.Backend = be
	}

	st, err := dse.Search(ctx, opts)
	if err != nil {
		return err
	}
	if *out == "" {
		b, err := dse.MarshalStudy(st)
		if err != nil {
			return err
		}
		if _, err := stdout.Write(b); err != nil {
			return err
		}
	} else {
		// Search already checkpointed the final artifact to -out.
		fmt.Fprintf(progress, "dse: study written to %s\n", *out)
	}
	st.WriteFrontier(progress)
	return nil
}
