package cli

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"mmt/internal/asm"
	"mmt/internal/prof"
	"mmt/internal/prog"
	"mmt/internal/static"
	"mmt/internal/static/absint"
	"mmt/internal/workloads"
)

// CheckResult is the JSON form of one program's pre-flight check: the
// static findings (structural lints plus the abstract-interpretation
// lints), the optional static-vs-dynamic cross-validation, the
// redundancy report, and the optional cost-model estimate.
type CheckResult struct {
	Program  string           `json:"program"`
	Findings []static.Finding `json:"findings"`
	CrossVal []static.Finding `json:"cross_validation,omitempty"`
	Report   *static.Report   `json:"report"`
	Estimate *absint.Estimate `json:"estimate,omitempty"`
	// Correlation is the predicted-vs-observed merged-fraction rank
	// correlation of the -against-profile join (absent without one).
	Correlation *absint.CrossValidation `json:"correlation,omitempty"`
}

// RunCheck is the mmtcheck command: the static pre-flight linter over
// assembled programs, with optional cross-validation against a dynamic
// attribution profile.
func RunCheck(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mmtcheck", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		appName  = fs.String("app", "", "check one application (see mmtsim -list)")
		all      = fs.Bool("all", false, "check every registered workload program")
		srcFile  = fs.String("src", "", "check an assembly source file instead of a registered workload")
		equ      = fs.String("equ", "", "override kernel constants, e.g. MOVES=500,TSIZE=256 (with -app)")
		format   = fs.String("format", "text", "output format: text, json or sarif")
		failOn   = fs.String("fail-on", "warning", "exit non-zero at this severity or above: info, warning, error (never = always succeed)")
		against  = fs.String("against-profile", "", "cross-validate against an attribution profile JSON (from mmtsim -profile-out)")
		minCorr  = fs.Float64("min-correlation", 0, "with -against-profile: fail when the predicted-vs-observed merged-fraction Spearman falls below this")
		estimate = fs.Bool("estimate", false, "print the static cost-model estimate (redundancy, LVIP potential, divergence sites)")
		report   = fs.Bool("report", true, "include the static redundancy report (text format)")
		version  = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		printVersion(out, "mmtcheck")
		return nil
	}
	if *format != "text" && *format != "json" && *format != "sarif" {
		return fmt.Errorf("unknown -format %q (want text, json or sarif)", *format)
	}
	var failSev static.Severity
	failNever := *failOn == "never"
	if !failNever {
		var err error
		if failSev, err = static.ParseSeverity(*failOn); err != nil {
			return err
		}
	}

	// Resolve the programs to check.
	type target struct {
		name string
		prog *prog.Program
		// app is set for registered workloads; the abstract interpreter
		// then uses the mode-aware options (MT stack striding, ME/MP
		// varying-input discovery).
		app *workloads.App
	}
	var targets []target
	switch {
	case *srcFile != "":
		if *appName != "" || *all {
			return fmt.Errorf("-src excludes -app and -all")
		}
		src, err := os.ReadFile(*srcFile)
		if err != nil {
			return err
		}
		p, err := asm.Assemble(*srcFile, string(src))
		if err != nil {
			return fmt.Errorf("assembling %s: %w", *srcFile, err)
		}
		targets = append(targets, target{*srcFile, p, nil})
	case *all:
		if *appName != "" {
			return fmt.Errorf("-all excludes -app")
		}
		for _, a := range append(workloads.All(), workloads.MP()...) {
			a := a
			p, err := asm.Assemble(a.Name, a.Source)
			if err != nil {
				return fmt.Errorf("assembling %s: %w", a.Name, err)
			}
			targets = append(targets, target{a.Name, p, &a})
		}
	case *appName != "":
		a, ok := workloads.ByName(*appName)
		if !ok {
			return fmt.Errorf("unknown application %q", *appName)
		}
		if *equ != "" {
			overrides, err := parseEqu(*equ)
			if err != nil {
				return err
			}
			a = a.Override(overrides)
		}
		p, err := asm.Assemble(a.Name, a.Source)
		if err != nil {
			return fmt.Errorf("assembling %s: %w", a.Name, err)
		}
		targets = append(targets, target{a.Name, p, &a})
	default:
		return fmt.Errorf("nothing to check: pass -app, -all or -src")
	}

	var profile *prof.Profile
	if *against != "" {
		if len(targets) != 1 {
			return fmt.Errorf("-against-profile needs exactly one program (use -app or -src)")
		}
		b, err := os.ReadFile(*against)
		if err != nil {
			return err
		}
		if profile, err = prof.ParseProfile(b); err != nil {
			return err
		}
	}

	// Analyze everything, then render and decide the exit in one pass.
	var results []CheckResult
	worst, any := static.SevInfo, false
	corrFailure := ""
	for _, t := range targets {
		a := static.Analyze(t.prog)

		// Abstract interpretation: lints join the structural findings; the
		// cost model backs -estimate and the -against-profile correlation.
		opts := absint.Options{}
		if t.app != nil {
			opts = absint.OptionsForApp(t.prog, *t.app, 2)
		}
		ir := absint.Run(a, opts)
		findings := append(append([]static.Finding(nil), a.Findings...), absint.Lint(ir)...)
		sort.SliceStable(findings, func(i, j int) bool {
			if findings[i].PC != findings[j].PC {
				return findings[i].PC < findings[j].PC
			}
			return findings[i].Code < findings[j].Code
		})

		r := CheckResult{Program: t.name, Findings: findings, Report: a.BuildReport()}
		if r.Findings == nil {
			r.Findings = []static.Finding{}
		}
		est := absint.EstimateOf(ir)
		if *estimate {
			r.Estimate = est
		}
		if profile != nil {
			r.CrossVal = a.CrossValidate(profile)
			r.Correlation = absint.CrossValidate(est, profile)
			if *minCorr > 0 && r.Correlation.Spearman < *minCorr {
				corrFailure = fmt.Sprintf("%s: predicted-vs-observed spearman %.3f below -min-correlation %.3f",
					t.name, r.Correlation.Spearman, *minCorr)
			}
		}
		for _, f := range append(append([]static.Finding(nil), r.Findings...), r.CrossVal...) {
			any = true
			if f.Sev > worst {
				worst = f.Sev
			}
		}
		results = append(results, r)
	}

	switch *format {
	case "json":
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			return err
		}
	case "sarif":
		if err := writeSARIF(out, results); err != nil {
			return err
		}
	default:
		for _, r := range results {
			fmt.Fprintf(out, "== %s ==\n", r.Program)
			if *report {
				r.Report.WriteText(out)
			}
			if r.Estimate != nil {
				e := r.Estimate
				fmt.Fprintf(out, "estimate: %d static insts, %.0f dynamic (est), redundancy %.3f, lvip potential %.3f, %d divergence sites\n",
					e.StaticInsts, e.DynInsts, e.Redundancy, e.LVIPPotential, len(e.Divergence))
				for _, d := range e.Divergence {
					fmt.Fprintf(out, "estimate: divergence at %#x, reconverges %#x (span %d insts, freq %.0f)\n",
						d.BranchPC, d.ReconvPC, d.SpanInsts, d.Freq)
				}
			}
			for _, f := range r.Findings {
				fmt.Fprintf(out, "%s: %s\n", r.Program, f)
			}
			if profile != nil {
				if len(r.CrossVal) == 0 {
					fmt.Fprintf(out, "%s: cross-validation clean: every observed remerge is a post-dominator of its divergence\n", r.Program)
				}
				for _, f := range r.CrossVal {
					fmt.Fprintf(out, "%s: cross-validation: %s\n", r.Program, f)
				}
				if c := r.Correlation; c != nil {
					fmt.Fprintf(out, "%s: cross-validation: predicted-vs-observed merged fraction: spearman %.3f over %d sites (predicted %.3f, observed %.3f)\n",
						r.Program, c.Spearman, len(c.Points), c.PredictedRedundancy, c.ObservedRedundancy)
				}
			}
		}
	}

	if corrFailure != "" {
		return fmt.Errorf("%s", corrFailure)
	}
	if !failNever && any && worst >= failSev {
		return fmt.Errorf("findings at %s severity or above (fail threshold %s)", worst, failSev)
	}
	return nil
}

// Precheck statically analyzes app's program and fails on error-severity
// findings; the admission gate behind mmtsim/mmtbench -precheck.
func Precheck(app workloads.App) error {
	p, err := asm.Assemble(app.Name, app.Source)
	if err != nil {
		return fmt.Errorf("precheck: assembling %s: %w", app.Name, err)
	}
	if err := static.Check(p); err != nil {
		return fmt.Errorf("precheck: %w", err)
	}
	return nil
}
