package cli

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"strings"
)

// Version reports the build's identity: the main module version when one is
// stamped, plus the VCS revision the Go toolchain embeds, with "+dirty" when
// the working tree was modified. Used by every command's -version flag and
// written into trace metadata so a capture names the binary that produced
// it.
func Version() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "(unknown)"
	}
	v := info.Main.Version
	if v == "" {
		v = "(devel)"
	}
	var rev string
	var dirty bool
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		// Module pseudo-versions already embed the revision; only add
		// what the version string doesn't carry.
		if !strings.Contains(v, rev) {
			v += " " + rev
		}
		if dirty && !strings.Contains(v, "+dirty") {
			v += "+dirty"
		}
	}
	return v
}

// printVersion writes the line every command's -version flag produces.
func printVersion(w io.Writer, cmd string) {
	fmt.Fprintf(w, "%s %s %s\n", cmd, Version(), runtime.Version())
}
