package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"mmt/internal/core"
	"mmt/internal/obs"
	"mmt/internal/prof"
	"mmt/internal/runner"
	"mmt/internal/sim"
	"mmt/internal/workloads"
)

// Artifacts lists the artifact names RunBench accepts, in output order.
var Artifacts = []string{
	"table3", "fig1", "fig2", "fig5a", "fig5b", "fig5c", "fig5d",
	"fig6", "fig7a", "fig7b", "fig7c", "fig7d",
	"mp", "cosched", "diversity", "scaling", "ablations", "sec63",
}

// RunBench is the mmtbench command: regenerate the evaluation artifacts.
// Artifact output goes to stdout; live progress and the runner summary go
// to stderr, so the report is byte-identical for any -j.
func RunBench(args []string, stdout io.Writer) error {
	_, err := runBench(args, stdout, os.Stderr)
	return err
}

// runBench is RunBench with the progress stream and the runner summary
// exposed for tests.
func runBench(args []string, stdout, progress io.Writer) (runner.Summary, error) {
	fs := flag.NewFlagSet("mmtbench", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		only     = fs.String("only", "", "comma-separated artifact list: "+strings.Join(Artifacts, ","))
		outFile  = fs.String("out", "", "also write the report to this file")
		jobs     = fs.Int("j", runtime.NumCPU(), "parallel simulation workers")
		cacheDir = fs.String("cache-dir", "", "persistent result cache directory (empty = disabled)")
		timeout  = fs.Duration("timeout", 0, "per-simulation wall-clock timeout (0 = none)")
		retries  = fs.Int("retries", 1, "extra attempts for a failed simulation")

		benchJSON     = fs.String("bench-json", "", "write a BENCH_"+strconv.Itoa(BenchSchema)+".json performance artifact (wall time, cycles, IPC, cache hit ratio per experiment); a directory auto-names the file")
		benchCompare  = fs.String("bench-compare", "", "compare two bench-json artifacts: OLD,NEW (runs nothing else)")
		benchFailOver = fs.Float64("bench-fail-over", 0, "with -bench-compare: fail when any experiment's simulated cycles regress by more than this percent (0 = report only)")
		profileOut    = fs.String("profile-out", "", "write the merged per-PC attribution profile across all timing experiments and print its top sites")
		profileTop    = fs.Int("profile-top", 10, "sites in the printed attribution report (0 = all)")

		traceOut    = fs.String("trace-out", "", "write a Chrome trace-event JSON timeline of the runner's workers (open in Perfetto)")
		sampleEvery = fs.Duration("sample-every", 250*time.Millisecond, "interval between worker-utilization samples on the trace")
		metricsAddr = fs.String("metrics-addr", "", "serve live runner metrics, expvar and pprof on this address")
		precheck    = fs.Bool("precheck", false, "statically analyze every workload program first (mmtcheck) and refuse to run on error findings")
		version     = fs.Bool("version", false, "print version and exit")
	)
	flf := addFlightFlags(fs)
	if err := fs.Parse(args); err != nil {
		return runner.Summary{}, err
	}
	if *version {
		printVersion(stdout, "mmtbench")
		return runner.Summary{}, nil
	}
	if *benchCompare != "" {
		oldPath, newPath, ok := strings.Cut(*benchCompare, ",")
		if !ok || strings.TrimSpace(oldPath) == "" || strings.TrimSpace(newPath) == "" {
			return runner.Summary{}, fmt.Errorf("-bench-compare wants OLD,NEW (two bench-json files)")
		}
		if *benchFailOver < 0 {
			return runner.Summary{}, fmt.Errorf("-bench-fail-over must be non-negative")
		}
		return runner.Summary{}, BenchCompareGate(stdout, strings.TrimSpace(oldPath), strings.TrimSpace(newPath), *benchFailOver)
	}
	if *benchFailOver != 0 {
		return runner.Summary{}, fmt.Errorf("-bench-fail-over only applies with -bench-compare")
	}
	if err := validateTimeout(*timeout); err != nil {
		return runner.Summary{}, err
	}
	if err := validateRetries(*retries); err != nil {
		return runner.Summary{}, err
	}
	if *traceOut != "" {
		if err := validateSampleEvery(*sampleEvery); err != nil {
			return runner.Summary{}, err
		}
	}

	// Validate requested artifact names.
	if *only != "" {
		valid := map[string]bool{}
		for _, a := range Artifacts {
			valid[a] = true
		}
		for _, s := range strings.Split(*only, ",") {
			if s = strings.TrimSpace(s); !valid[s] {
				return runner.Summary{}, fmt.Errorf("unknown artifact %q (valid: %s)", s, strings.Join(Artifacts, ","))
			}
		}
	}

	if *precheck {
		for _, a := range append(workloads.All(), workloads.MP()...) {
			if err := Precheck(a); err != nil {
				return runner.Summary{}, err
			}
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	opts := runner.Options{
		Workers:  *jobs,
		CacheDir: *cacheDir,
		Timeout:  *timeout,
		Retries:  *retries,
		Progress: progress,
	}
	if *metricsAddr != "" {
		opts.Metrics = obs.NewRegistry()
		srv, err := serveMetrics(*metricsAddr, opts.Metrics, progress)
		if err != nil {
			return runner.Summary{}, err
		}
		defer srv.Close()
	}
	var closeTrace func() error
	if *traceOut != "" {
		rec, closeSinks, err := openTraceSinks(*traceOut, "", "mmtbench runner", "worker",
			map[string]string{"version": Version(), "workers": strconv.Itoa(*jobs)})
		if err != nil {
			return runner.Summary{}, err
		}
		opts.Trace = rec
		opts.TraceSampleEvery = *sampleEvery
		closeTrace = closeSinks
	}
	// The always-on flight recorder rides the pool's job timeline; a
	// captured worker panic or SIGQUIT dumps the ring to disk.
	fl, dumpDir := flf.build("mmtbench", progress)
	opts.Flight = fl
	opts.FlightDumpDir = dumpDir
	if opts.Trace != nil {
		opts.Trace = obs.Multi(opts.Trace, fl)
	} else {
		opts.Trace = fl
	}
	// -bench-json and -profile-out observe the experiment stream through a
	// wrapping executor; its completion hook must be installed before the
	// pool exists.
	var bx *benchExec
	if *benchJSON != "" || *profileOut != "" {
		bx = newBenchExec(nil, *profileOut != "")
		opts.OnComplete = bx.complete
	}
	pool, err := runner.New(ctx, opts)
	if err != nil {
		if closeTrace != nil {
			closeTrace()
		}
		return runner.Summary{}, err
	}
	var ex sim.Exec = pool
	if bx != nil {
		bx.inner = pool
		ex = bx
	}

	err = writeReport(ex, stdout, *only, *outFile)
	pool.Close()
	if closeTrace != nil {
		if cerr := closeTrace(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if err == nil && bx != nil {
		err = emitBenchArtifacts(stdout, bx, *benchJSON, *profileOut, *profileTop)
	}
	s := pool.Summary()
	if progress != nil && s.Jobs > 0 {
		fmt.Fprint(progress, s.Format())
	}
	return s, err
}

// emitBenchArtifacts writes the -bench-json file and the merged
// attribution profile after a successful artifact run.
func emitBenchArtifacts(stdout io.Writer, bx *benchExec, benchJSON, profileOut string, profileTop int) error {
	if benchJSON != "" {
		if err := writeBenchJSON(benchJSON, bx.file()); err != nil {
			return err
		}
	}
	if profileOut == "" {
		return nil
	}
	p := bx.mergedProfile()
	if p == nil {
		return fmt.Errorf("no attributed timing experiment ran; nothing behind -profile-out")
	}
	b, err := p.Marshal()
	if err != nil {
		return err
	}
	if err := os.WriteFile(profileOut, b, 0o644); err != nil {
		return err
	}
	fmt.Fprintln(stdout)
	return prof.WriteReport(stdout, p, profileTop)
}

// writeReport renders the requested artifacts through the executor. The
// returned error includes any failure to flush or close the -out file —
// a silently truncated report would otherwise look like a clean run.
func writeReport(ex sim.Exec, stdout io.Writer, only, outFile string) (err error) {
	var w io.Writer = stdout
	if outFile != "" {
		f, cerr := os.Create(outFile)
		if cerr != nil {
			return cerr
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("closing %s: %w", outFile, cerr)
			}
		}()
		w = io.MultiWriter(stdout, f)
	}
	return renderArtifacts(ex, w, only)
}

// renderArtifacts runs every requested artifact in presentation order.
func renderArtifacts(ex sim.Exec, w io.Writer, only string) error {
	want := func(name string) bool {
		if only == "" {
			return true
		}
		for _, s := range strings.Split(only, ",") {
			if strings.TrimSpace(s) == name {
				return true
			}
		}
		return false
	}

	apps := workloads.All()

	if want("table3") {
		h := core.EstimateHWCost(core.DefaultConfig(4))
		fmt.Fprintf(w, "Table 3: MMT hardware cost estimate\n------------------------------------\n%s\n\n", h)
	}
	if want("fig1") {
		rows, err := sim.Figure1(ex, apps, 1_000_000)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, sim.FormatFig1(rows))
	}
	if want("fig2") {
		rows, err := sim.Figure2(ex, apps, 1_000_000)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, sim.FormatFig2(rows))
	}
	if want("fig5a") {
		rows, gm, err := sim.Figure5Speedups(ex, apps, 2)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, sim.FormatFig5(rows, gm, 2))
	}
	if want("fig5b") {
		rows, err := sim.Figure5b(ex, apps, 2)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, sim.FormatFig5b(rows))
	}
	if want("fig5c") {
		rows, gm, err := sim.Figure5Speedups(ex, apps, 4)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, sim.FormatFig5(rows, gm, 4))
	}
	if want("fig5d") {
		rows, err := sim.Figure5d(ex, apps, 2)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, sim.FormatFig5d(rows))
	}
	if want("fig6") {
		rows, err := sim.Figure6(ex, apps)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, sim.FormatFig6(rows))
	}
	if want("fig7a") {
		rows, err := sim.Figure7a(ex, apps, 2)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, sim.FormatFig7a(rows))
	}
	if want("fig7b") {
		sp, err := sim.Figure7b(ex, apps, 2)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, sim.FormatSweep("Figure 7(b): geomean speedup vs load/store ports", sim.LSPortCounts, sp))
	}
	if want("fig7c") {
		rows, err := sim.Figure7c(ex, apps, 2)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, sim.FormatFig7c(rows))
	}
	if want("fig7d") {
		sp, err := sim.Figure7d(ex, apps, 2)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, sim.FormatSweep("Figure 7(d): geomean speedup vs fetch width", sim.FetchWidths, sp))
	}
	if want("mp") {
		rows, err := sim.ExtensionMP(ex)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, sim.FormatMP(rows))
	}
	if want("cosched") {
		rows, err := sim.ExtensionCoschedule(ex)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, sim.FormatCoschedule(rows))
	}
	if want("diversity") {
		rows, err := sim.ExtensionDiversity(ex)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, sim.FormatDiversity(rows))
	}
	if want("scaling") {
		rows, err := sim.ExtensionScaling(ex, apps)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, sim.FormatScaling(rows))
	}
	if want("ablations") {
		type study struct {
			title string
			names []string
			run   func() ([]sim.AblationRow, []float64, error)
		}
		for _, s := range []study{
			{"Ablation: remerge mechanism (MMT-FXR, 2T)", sim.SyncPolicyNames,
				func() ([]sim.AblationRow, []float64, error) { return sim.AblationSyncPolicy(ex, apps, 2) }},
			{"Ablation: load-value-identical policy (MMT-FXR, 2T)", sim.LVIPModeNames,
				func() ([]sim.AblationRow, []float64, error) { return sim.AblationLVIP(ex, apps, 2) }},
			{"Ablation: CATCHUP ahead-thread duty cycle (MMT-FXR, 2T)", dutyNames(),
				func() ([]sim.AblationRow, []float64, error) { return sim.AblationAheadDuty(ex, apps, 2) }},
			{"Ablation: register-merge read ports (MMT-FXR, 2T)", portNames(),
				func() ([]sim.AblationRow, []float64, error) { return sim.AblationRegMergePorts(ex, apps, 2) }},
			{"Ablation (§5 claim): machine scale — gains grow as the core shrinks", sim.MachineScaleNames,
				func() ([]sim.AblationRow, []float64, error) { return sim.AblationMachineScale(ex, apps, 2) }},
			{"Ablation (§5 claim): trace cache on/off — near-identical results", sim.TraceCacheNames,
				func() ([]sim.AblationRow, []float64, error) { return sim.AblationTraceCache(ex, apps, 2) }},
		} {
			rows, gms, err := s.run()
			if err != nil {
				return err
			}
			fmt.Fprintln(w, sim.FormatAblation(s.title, s.names, rows, gms))
		}
	}
	if want("sec63") {
		m, err := sim.RemergeWithin512(ex, apps, 2)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "Section 6.3: remerges found within 512 taken branches")
		fmt.Fprintln(w, "-----------------------------------------------------")
		var total float64
		n := 0
		for _, a := range apps {
			if v, ok := m[a.Name]; ok {
				fmt.Fprintf(w, "%-14s %6.1f%%\n", a.Name, 100*v)
				total += v
				n++
			}
		}
		if n > 0 {
			fmt.Fprintf(w, "%-14s %6.1f%%\n\n", "average", 100*total/float64(n))
		}
	}
	return nil
}

func dutyNames() []string {
	var out []string
	for _, d := range sim.AheadDuties {
		if d == 0 {
			out = append(out, "gated")
		} else {
			out = append(out, fmt.Sprintf("1/%d", d))
		}
	}
	return out
}

func portNames() []string {
	var out []string
	for _, p := range sim.RegMergePortCounts {
		out = append(out, fmt.Sprintf("%d ports", p))
	}
	return out
}
