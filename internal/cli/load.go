package cli

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/signal"
	"sort"
	"sync"
	"syscall"
	"time"

	"mmt/internal/cluster"
	"mmt/internal/obs"
	"mmt/internal/prof"
	"mmt/internal/serve"
	"mmt/internal/serve/client"
	"mmt/internal/sim"
)

// RunLoad is the mmtload command: a load generator for mmtserved. It
// submits -n jobs at concurrency -c, a -dup fraction of which repeat an
// earlier spec (exercising the server's single-flight dedup and result
// cache), and reports throughput, latency quantiles, and how the server
// sourced the outcomes.
func RunLoad(args []string, stdout io.Writer) error {
	return runLoad(args, stdout, os.Stderr)
}

func runLoad(args []string, stdout, progress io.Writer) error {
	fs := flag.NewFlagSet("mmtload", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		server  = fs.String("server", "http://127.0.0.1:8377", "mmtserved (or, with -cluster, mmtrouter) base URL")
		fleetly = fs.Bool("cluster", false, "treat -server as an mmtrouter: report per-node throughput and latency plus the fleet dedup ratio")
		n       = fs.Int("n", 32, "total jobs to submit")
		conc    = fs.Int("c", 8, "concurrent in-flight jobs")
		dup     = fs.Float64("dup", 0.5, "fraction of jobs that duplicate an earlier spec [0,1)")
		seed    = fs.Int64("seed", 1, "workload generator seed (same seed = same job stream)")

		app      = fs.String("app", "libsvm", "workload to submit")
		preset   = fs.String("preset", "", "design point (empty = server default, MMT-FXR)")
		threads  = fs.Int("threads", 0, "hardware threads (0 = server default)")
		maxInsts = fs.Uint64("max-insts", 20000, "per-thread committed-instruction bound (keeps load jobs cheap)")

		deadlineMS  = fs.Int64("deadline-ms", 0, "per-job queued-deadline in milliseconds (0 = server default)")
		retries     = fs.Int("retries", 4, "client retry budget per request")
		metricsAddr = fs.String("metrics-addr", "", "serve the load generator's own metrics on this address")
		eventsOut   = fs.String("events-out", "", "write a JSONL client-side job timeline (one span per job, cache-hit markers)")
		attribution = fs.Bool("attribution", false, "request per-PC attribution profiles from the server and merge them")
		profileOut  = fs.String("profile-out", "", "with -attribution: write the merged attribution profile to this file")
		profileTop  = fs.Int("profile-top", 5, "sites in the printed attribution summary (0 = all)")
		version     = fs.Bool("version", false, "print version and exit")
	)
	logf := addLogFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		printVersion(stdout, "mmtload")
		return nil
	}
	logger, err := logf.logger(progress)
	if err != nil {
		return err
	}
	logger = logger.With("service", "mmtload")
	if *n <= 0 || *conc <= 0 {
		return fmt.Errorf("-n and -c must be positive")
	}
	if *dup < 0 || *dup >= 1 {
		return fmt.Errorf("-dup must be in [0,1)")
	}
	if err := validateRetries(*retries); err != nil {
		return err
	}
	if *profileOut != "" && !*attribution {
		return fmt.Errorf("-profile-out requires -attribution")
	}

	reg := obs.NewRegistry()
	submitted := reg.Counter("mmt_load_jobs_total", "Jobs submitted by the load generator.")
	failures := reg.Counter("mmt_load_failures_total", "Jobs that ended in an error.")
	latency := reg.Histogram("mmt_load_job_latency_seconds", "Submit-to-outcome latency observed by the client.")
	if *metricsAddr != "" {
		msrv, err := serveMetrics(*metricsAddr, reg, progress)
		if err != nil {
			return err
		}
		defer msrv.Close()
	}
	var rec obs.Recorder
	var closeRec func() error
	if *eventsOut != "" {
		r, c, err := openTraceSinks("", *eventsOut, "mmtload", "client",
			map[string]string{"version": Version(), "server": *server})
		if err != nil {
			return err
		}
		rec, closeRec = r, c
	}

	specs := loadSpecs(*n, *dup, *seed, sim.TaskSpec{
		App: *app, Preset: sim.Preset(*preset), Threads: *threads,
		Config:      &sim.ConfigOverride{MaxInsts: *maxInsts},
		Attribution: *attribution,
	})
	unique := map[string]bool{}
	for _, s := range specs {
		b, _ := json.Marshal(s)
		unique[string(b)] = true
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	c := client.New(*server, nil)
	c.Retries = *retries

	before, err := c.Stats(ctx)
	if err != nil {
		return fmt.Errorf("reaching %s: %w", *server, err)
	}
	var clusterBefore cluster.ClusterStats
	if *fleetly {
		if clusterBefore, err = cluster.FetchClusterStats(ctx, nil, *server); err != nil {
			return fmt.Errorf("-cluster: %s is not an mmtrouter: %w", *server, err)
		}
	}
	fmt.Fprintf(stdout, "mmtload: %d jobs (%d unique specs), concurrency %d, dup ratio %.2f, seed %d -> %s\n",
		*n, len(unique), *conc, *dup, *seed, *server)

	type result struct {
		dur    time.Duration
		source string // JobStatus.Source: "simulated" or "cache"
		dedup  bool   // joined an already-admitted flight
		err    error
	}
	results := make([]result, len(specs))
	var profMu sync.Mutex
	var merged *prof.Profile
	work := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range work {
				// Deterministic per-job correlation id: the same seed
				// produces the same ids, so two runs' traces line up.
				traceID := fmt.Sprintf("load-%d-%d", *seed, i)
				t0 := time.Now()
				o, st, err := c.Run(ctx, serve.SubmitRequest{
					Task: specs[i], DeadlineMS: *deadlineMS, TraceID: traceID,
				})
				d := time.Since(t0)
				results[i] = result{dur: d, source: st.Source, dedup: st.Dedup, err: err}
				submitted.Inc()
				latency.Observe(d)
				if err != nil {
					failures.Inc()
					logger.Warn("job failed", "job", i, "trace", traceID, "error", err.Error())
				} else {
					logger.Debug("job done", "job", st.ID, "trace", traceID,
						"source", st.Source, "dedup", st.Dedup, "ms", d.Milliseconds())
				}
				if err == nil && o != nil && o.Attribution != nil {
					profMu.Lock()
					if merged == nil {
						merged = &prof.Profile{Schema: prof.SchemaVersion}
					}
					merged.Merge(o.Attribution)
					profMu.Unlock()
				}
				if rec != nil {
					ts := uint64(t0.Sub(start) / time.Microsecond)
					rec.Event(obs.Event{TS: ts, Kind: obs.EvJob, Track: int32(w),
						Dur: uint64(d / time.Microsecond), Name: specs[i].Name(), Trace: traceID})
					if st.Source == "cache" {
						rec.Event(obs.Event{TS: ts, Kind: obs.EvCacheHit, Track: int32(w),
							Name: specs[i].Name(), Trace: traceID})
					}
				}
			}
		}(w)
	}
	for i := range specs {
		select {
		case work <- i:
		case <-ctx.Done():
			i = len(specs) // stop feeding; workers drain and exit
		}
	}
	close(work)
	wg.Wait()
	wall := time.Since(start)

	var durs []time.Duration
	failed, simulated, cached, dedupJoins := 0, 0, 0, 0
	var firstErr error
	for _, r := range results {
		if r.err != nil {
			failed++
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		if r.dur > 0 {
			durs = append(durs, r.dur)
		}
		switch r.source {
		case "simulated":
			simulated++
		case "cache":
			cached++
		}
		if r.dedup {
			dedupJoins++
		}
	}
	if rec != nil {
		// Final counter samples make the split greppable in -events-out
		// next to the per-job spans.
		ts := uint64(wall / time.Microsecond)
		rec.Event(obs.Event{TS: ts, Kind: obs.EvCounter, Name: "load-served-simulated", Arg: uint64(simulated)})
		rec.Event(obs.Event{TS: ts, Kind: obs.EvCounter, Name: "load-served-cache", Arg: uint64(cached)})
		rec.Event(obs.Event{TS: ts, Kind: obs.EvCounter, Name: "load-dedup-joins", Arg: uint64(dedupJoins)})
	}
	var recErr error
	if closeRec != nil {
		recErr = closeRec()
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	fmt.Fprintf(stdout, "mmtload: done in %s — %.1f jobs/s, %d failed\n",
		wall.Round(time.Millisecond), float64(len(durs))/wall.Seconds(), failed)
	if len(durs) > 0 {
		fmt.Fprintf(stdout, "latency: p50 %s p90 %s p99 %s (min %s max %s)\n",
			quantileDur(durs, 0.50), quantileDur(durs, 0.90), quantileDur(durs, 0.99),
			durs[0].Round(time.Millisecond), durs[len(durs)-1].Round(time.Millisecond))
	}
	if done := len(results) - failed; done > 0 {
		fmt.Fprintf(stdout, "client:  simulated=%d cache=%d dedup_joins=%d (dedup hit ratio %.2f)\n",
			simulated, cached, dedupJoins, float64(dedupJoins)/float64(done))
	}
	if after, err := c.Stats(context.Background()); err == nil {
		fmt.Fprintf(stdout, "server:  simulated=%d cache=%d dedup_joins=%d rejected=%d expired=%d\n",
			after.Simulated-before.Simulated, after.FromCache-before.FromCache,
			after.Deduped-before.Deduped, after.Rejected-before.Rejected,
			after.Expired-before.Expired)
	}
	if *fleetly {
		if clusterAfter, err := cluster.FetchClusterStats(context.Background(), nil, *server); err == nil {
			printClusterReport(stdout, clusterBefore, clusterAfter, wall)
		} else {
			fmt.Fprintf(stdout, "cluster: stats fetch failed: %v\n", err)
		}
	}
	if merged != nil {
		total := merged.Cycles
		fmt.Fprintf(stdout, "attribution: %d cycles merged across jobs — base %.1f%% fetch-stall %.1f%% catchup %.1f%% rollback %.1f%% drain %.1f%%\n",
			total, loadPct(merged.CPI.Base, total), loadPct(merged.CPI.FetchStall, total),
			loadPct(merged.CPI.Catchup, total), loadPct(merged.CPI.Rollback, total), loadPct(merged.CPI.Drain, total))
		if *profileOut != "" {
			b, merr := merged.Marshal()
			if merr != nil {
				return merr
			}
			if werr := os.WriteFile(*profileOut, b, 0o644); werr != nil {
				return werr
			}
			fmt.Fprintln(stdout)
			if rerr := prof.WriteReport(stdout, merged, *profileTop); rerr != nil {
				return rerr
			}
		}
	} else if *attribution && firstErr == nil {
		fmt.Fprintln(stdout, "attribution: no profiles returned (older server?)")
	}
	if firstErr != nil {
		return fmt.Errorf("%d/%d jobs failed, first: %w", failed, len(specs), firstErr)
	}
	if recErr != nil {
		return recErr
	}
	return ctx.Err()
}

// printClusterReport diffs two /v1/cluster snapshots around a run and
// prints the fleet dedup ratio plus a per-node throughput/latency table.
// Counters are deltas over the run; latency quantiles are the nodes' own
// cumulative estimates (quantiles do not diff), so they reflect each
// node's whole uptime.
func printClusterReport(stdout io.Writer, before, after cluster.ClusterStats, wall time.Duration) {
	completed := after.Fleet.Completed - before.Fleet.Completed
	simulated := after.Fleet.Simulated - before.Fleet.Simulated
	ratio := 0.0
	if completed > 0 {
		ratio = float64(completed-simulated) / float64(completed)
	}
	fmt.Fprintf(stdout, "cluster: fleet dedup ratio %.2f (%d completed, %d simulated) — routed=%d rerouted=%d stolen=%d errors=%d\n",
		ratio, completed, simulated,
		after.Routed-before.Routed, after.Rerouted-before.Rerouted,
		after.Stolen-before.Stolen, after.Errors-before.Errors)
	prev := map[string]cluster.NodeStatus{}
	for _, n := range before.Nodes {
		prev[n.Name] = n
	}
	fmt.Fprintf(stdout, "%-12s %-9s %9s %10s %10s %9s %10s %10s\n",
		"node", "state", "routed", "completed", "simulated", "jobs/s", "job_p50", "job_p99")
	for _, n := range after.Nodes {
		p := prev[n.Name]
		done := n.Stats.Completed - p.Stats.Completed
		fmt.Fprintf(stdout, "%-12s %-9s %9d %10d %10d %9.1f %9.0fms %9.0fms\n",
			n.Name, n.State, n.Routed-p.Routed, done, n.Stats.Simulated-p.Stats.Simulated,
			float64(done)/wall.Seconds(), n.Stats.JobP50MS, n.Stats.JobP99MS)
	}
}

func loadPct(part, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(part) / float64(total)
}

// loadSpecs builds the deterministic job stream: unique specs vary the
// FHB size, fetch width and load/store ports (the Fig. 7 knobs), and a
// dup fraction of positions repeat a random earlier spec.
func loadSpecs(n int, dup float64, seed int64, base sim.TaskSpec) []sim.TaskSpec {
	rng := rand.New(rand.NewSource(seed))
	fhbs := []int{0, 32, 64, 128}
	widths := []int{0, 2, 8}
	ports := []int{0, 1, 4}
	nextUnique := 0
	variant := func(i int) sim.TaskSpec {
		s := base
		cfg := *base.Config
		cfg.FHBSize = fhbs[i%len(fhbs)]
		cfg.FetchWidth = widths[(i/len(fhbs))%len(widths)]
		cfg.LSPorts = ports[(i/(len(fhbs)*len(widths)))%len(ports)]
		// Past the knob cross-product, nudge the instruction bound to stay
		// unique without changing the workload's character.
		cfg.MaxInsts = base.Config.MaxInsts + uint64(i/(len(fhbs)*len(widths)*len(ports)))*512
		s.Config = &cfg
		return s
	}
	specs := make([]sim.TaskSpec, 0, n)
	for i := 0; i < n; i++ {
		if i > 0 && rng.Float64() < dup {
			specs = append(specs, specs[rng.Intn(len(specs))])
			continue
		}
		specs = append(specs, variant(nextUnique))
		nextUnique++
	}
	return specs
}

func quantileDur(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i].Round(time.Millisecond)
}
