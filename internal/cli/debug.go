package cli

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"time"

	"mmt/internal/obs"
	"mmt/internal/obs/flight"
	"mmt/internal/obs/history"
	"mmt/internal/obs/profiled"
	"mmt/internal/obs/span"
)

// debugOptions carries the flags every daemon shares for the always-on
// diagnostics surface: the flight recorder ring, the continuous profiler
// and the in-process metrics history behind GET /v1/debug/.
type debugOptions struct {
	flightEntries *int
	flightDumpDir *string
	profileEvery  *time.Duration
	profileCPU    *time.Duration
	historyEvery  *time.Duration
}

// addDebugFlags registers the -flight-*, -profile-* and -history-* flags.
func addDebugFlags(fs *flag.FlagSet) debugOptions {
	return debugOptions{
		flightEntries: fs.Int("flight-entries", flight.DefaultCapacity, "flight recorder ring capacity (entries)"),
		flightDumpDir: fs.String("flight-dump-dir", os.TempDir(), "where SIGQUIT/panic flight dumps land (empty = no dumps; the ring stays live)"),
		profileEvery:  fs.Duration("profile-every", time.Minute, "continuous profiler round cadence (0 = disabled)"),
		profileCPU:    fs.Duration("profile-cpu", 5*time.Second, "CPU window per profiler round (clamped to half the cadence)"),
		historyEvery:  fs.Duration("history-every", 5*time.Second, "metrics history sampling cadence"),
	}
}

// flightOptions carries just the flight-recorder flags for batch tools
// (mmtsim, mmtbench) that want the black-box ring and SIGQUIT/panic dumps
// without the daemon debug surface.
type flightOptions struct {
	entries *int
	dumpDir *string
}

// addFlightFlags registers -flight-entries and -flight-dump-dir on fs.
func addFlightFlags(fs *flag.FlagSet) flightOptions {
	return flightOptions{
		entries: fs.Int("flight-entries", flight.DefaultCapacity, "flight recorder ring capacity (entries)"),
		dumpDir: fs.String("flight-dump-dir", os.TempDir(), "where SIGQUIT/panic flight dumps land (empty = no dumps; the ring stays live)"),
	}
}

// build creates the ring and installs the SIGQUIT dump handler. The
// returned dir is where panic dumps should land ("" when dumps are off).
func (o flightOptions) build(service string, progress io.Writer) (*flight.Recorder, string) {
	fl := flight.New(service, *o.entries)
	fl.Mark("process start: " + service)
	if *o.dumpDir != "" {
		flight.InstallSignalDump(fl, *o.dumpDir, progress)
	}
	return fl, *o.dumpDir
}

// debugStack is the assembled diagnostics surface for one daemon.
type debugStack struct {
	Flight   *flight.Recorder
	Profiler *profiled.Profiler
	History  *history.Sampler
	Handler  http.Handler // the GET /v1/debug/ mux (profiles, metrics, config)
	DumpDir  string
	DumpPath string // where a SIGQUIT dump will land ("" when dumps are off)
}

// build assembles the stack for a daemon: the flight ring (always on), the
// profiler and metrics-history samplers (flag-gated), the SIGQUIT dump
// handler, and the /v1/debug/ mux. service is the fleet-visible label
// ("mmtserved@host:port"); fs is the parsed flag set, rendered at
// GET /v1/debug/config so a bundle records the node's exact configuration.
func (o debugOptions) build(service string, fs *flag.FlagSet, reg *obs.Registry, tracer *span.Tracer, logger *slog.Logger, progress io.Writer) *debugStack {
	st := &debugStack{
		Flight:  flight.New(service, *o.flightEntries),
		DumpDir: *o.flightDumpDir,
	}
	st.Flight.Mark("process start: " + service)
	if tracer != nil {
		fl := st.Flight
		tracer.SetObserver(func(r span.Record) {
			fl.SpanRef(r.Name, r.TraceID, r.StartUNS, r.DurNS)
		})
	}
	if st.DumpDir != "" {
		st.DumpPath = flight.InstallSignalDump(st.Flight, st.DumpDir, progress)
	}
	if *o.profileEvery > 0 {
		st.Profiler = profiled.New(service, profiled.Options{
			Every:       *o.profileEvery,
			CPUDuration: *o.profileCPU,
			OnError: func(err error) {
				if logger != nil {
					logger.Warn("profiler capture failed", "error", err.Error())
				}
			},
		})
	}
	if reg != nil {
		st.History = history.New(service, reg, *o.historyEvery, 0)
	}

	mux := http.NewServeMux()
	if st.Profiler != nil {
		mux.Handle("GET /v1/debug/profiles", st.Profiler)
	}
	if st.History != nil {
		mux.Handle("GET /v1/debug/metrics", st.History)
	}
	mux.HandleFunc("GET /v1/debug/config", configHandler(service, fs))
	mux.HandleFunc("GET /v1/debug/", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "unknown debug endpoint (have: flight, profiles, metrics, config)", http.StatusNotFound)
	})
	st.Handler = mux
	return st
}

// Wrap layers the flight ring under a slog handler so recent log lines
// ride along in dumps, preserving the logger's format and level floor.
func (st *debugStack) Wrap(logger *slog.Logger) *slog.Logger {
	return slog.New(flight.NewLogHandler(logger.Handler(), st.Flight))
}

// Close stops the samplers. The flight ring needs no teardown.
func (st *debugStack) Close() {
	if st == nil {
		return
	}
	st.Profiler.Close()
	st.History.Close()
}

// ConfigDoc is the GET /v1/debug/config body: the daemon's resolved flag
// values, so a diagnosis bundle reproduces the node's exact configuration.
type ConfigDoc struct {
	Service string            `json:"service"`
	Version string            `json:"version"`
	PID     int               `json:"pid"`
	Flags   map[string]string `json:"flags"`
}

func configHandler(service string, fs *flag.FlagSet) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		doc := ConfigDoc{
			Service: service,
			Version: Version(),
			PID:     os.Getpid(),
			Flags:   map[string]string{},
		}
		if fs != nil {
			fs.VisitAll(func(f *flag.Flag) {
				doc.Flags[f.Name] = f.Value.String()
			})
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		enc.Encode(doc) //nolint:errcheck // client went away
	}
}

// announce prints the diagnostics surface once at daemon startup.
func (st *debugStack) announce(progress io.Writer, addr string) {
	if progress == nil {
		return
	}
	profiling := "off"
	if st.Profiler != nil {
		profiling = "on"
	}
	dump := "off"
	if st.DumpPath != "" {
		dump = st.DumpPath
	}
	fmt.Fprintf(progress, "diagnostics on http://%s/v1/debug/ (flight ring, profiler %s, SIGQUIT dump %s)\n",
		addr, profiling, dump)
}
