package cli

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"mmt/internal/cache"
	"mmt/internal/prof"
	"mmt/internal/runner"
	"mmt/internal/sim"
)

// BenchSchema versions the -bench-json artifact; the file is named
// BENCH_<schema>.json when the flag points at a directory, so CI picks up
// format changes as a new artifact name instead of silently mixing
// encodings.
const BenchSchema = 1

// BenchFile is the -bench-json document: one entry per distinct
// experiment (task key) in first-collection order.
type BenchFile struct {
	Schema      int          `json:"schema"`
	Experiments []BenchEntry `json:"experiments"`
}

// BenchEntry is one experiment's performance record. Cycles, IPC and
// CacheHitRatio describe the simulated machine; WallMS and FromCache
// describe the harness (how long the simulation took us to produce, or
// that the persistent cache answered). Trace-alignment experiments have
// no timing result, so only the harness fields are set.
type BenchEntry struct {
	Name      string  `json:"name"`
	Key       string  `json:"key"`
	WallMS    float64 `json:"wall_ms"`
	FromCache bool    `json:"from_cache,omitempty"`
	Cycles    uint64  `json:"cycles,omitempty"`
	IPC       float64 `json:"ipc,omitempty"`
	// CacheHitRatio is the fraction of the run's L1 accesses that did not
	// reach DRAM: 1 - DRAM/(L1I+L1D).
	CacheHitRatio float64 `json:"cache_hit_ratio,omitempty"`
}

// hitRatio computes a run's memory-hierarchy hit ratio.
func hitRatio(m cache.Events) float64 {
	l1 := m.L1IAccesses + m.L1DAccesses
	if l1 == 0 {
		return 0
	}
	r := 1 - float64(m.DRAMAccesses)/float64(l1)
	if r < 0 {
		return 0
	}
	return r
}

// benchExec wraps the runner pool so mmtbench can observe every distinct
// experiment the artifact drivers collect: one BenchEntry per task key in
// first-Do order, and — when attribution is requested — every timing task
// forced to carry a profiler, with the resulting profiles merged into one
// aggregate.
type benchExec struct {
	inner       sim.Exec
	attribution bool

	mu      sync.Mutex
	comps   map[string]runner.Completion
	order   []string
	entries map[string]*BenchEntry
	profile *prof.Profile
}

func newBenchExec(inner sim.Exec, attribution bool) *benchExec {
	return &benchExec{
		inner:       inner,
		attribution: attribution,
		comps:       make(map[string]runner.Completion),
		entries:     make(map[string]*BenchEntry),
	}
}

// complete is the pool's OnComplete hook; it runs on worker goroutines
// before the corresponding Do returns, so Do always finds its completion.
func (b *benchExec) complete(c runner.Completion) {
	b.mu.Lock()
	b.comps[c.Key] = c
	b.mu.Unlock()
}

// instrument applies the attribution request to a task. Attribution is
// part of the key, so Schedule and Do must agree or the pool would run
// every point twice.
func (b *benchExec) instrument(t sim.Task) sim.Task {
	if b.attribution && !t.Profile {
		t.Attribution = true
	}
	return t
}

// Schedule implements sim.Exec.
func (b *benchExec) Schedule(tasks ...sim.Task) error {
	for i := range tasks {
		tasks[i] = b.instrument(tasks[i])
	}
	return b.inner.Schedule(tasks...)
}

// Do implements sim.Exec.
func (b *benchExec) Do(t sim.Task) (*sim.Outcome, error) {
	t = b.instrument(t)
	o, err := b.inner.Do(t)
	if err != nil {
		return o, err
	}
	key, kerr := t.Key()
	if kerr != nil {
		return o, nil // Do would have failed first; defensive only
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, seen := b.entries[key]; seen {
		return o, nil
	}
	e := &BenchEntry{Name: t.Name(), Key: key}
	if c, ok := b.comps[key]; ok {
		e.WallMS = float64(c.Dur.Microseconds()) / 1e3
		e.FromCache = c.FromCache
	}
	if r := o.Result; r != nil {
		e.Cycles = r.Stats.Cycles
		e.IPC = r.Stats.IPC()
		e.CacheHitRatio = hitRatio(r.Mem)
	}
	b.order = append(b.order, key)
	b.entries[key] = e
	if o.Attribution != nil {
		if b.profile == nil {
			b.profile = &prof.Profile{Schema: prof.SchemaVersion}
		}
		// Merge copies site values, so the memoized outcome's profile is
		// never aliased or mutated.
		b.profile.Merge(o.Attribution)
	}
	return o, nil
}

// file assembles the recorded entries in first-collection order.
func (b *benchExec) file() BenchFile {
	b.mu.Lock()
	defer b.mu.Unlock()
	f := BenchFile{Schema: BenchSchema}
	for _, key := range b.order {
		f.Experiments = append(f.Experiments, *b.entries[key])
	}
	return f
}

// mergedProfile returns the aggregate attribution profile (nil when no
// attributed experiment ran).
func (b *benchExec) mergedProfile() *prof.Profile {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.profile
}

// writeBenchJSON writes the bench file behind -bench-json. A directory
// path auto-names the artifact BENCH_<schema>.json inside it.
func writeBenchJSON(path string, f BenchFile) error {
	if st, err := os.Stat(path); err == nil && st.IsDir() {
		path = filepath.Join(path, fmt.Sprintf("BENCH_%d.json", BenchSchema))
	}
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// readBenchFile loads and schema-checks a -bench-json artifact.
func readBenchFile(path string) (BenchFile, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return BenchFile{}, err
	}
	var f BenchFile
	if err := json.Unmarshal(b, &f); err != nil {
		return BenchFile{}, fmt.Errorf("decoding %s: %w", path, err)
	}
	if f.Schema != BenchSchema {
		return BenchFile{}, fmt.Errorf("%s: bench schema %d, this build reads %d", path, f.Schema, BenchSchema)
	}
	return f, nil
}

// benchNames labels a file's experiments by display name, disambiguating
// repeats as name#2, name#3... in collection order, so two files from the
// same artifact set match up even though keys differ across code changes.
func benchNames(f BenchFile) ([]string, map[string]BenchEntry) {
	seen := make(map[string]int)
	byName := make(map[string]BenchEntry)
	var order []string
	for _, e := range f.Experiments {
		seen[e.Name]++
		name := e.Name
		if n := seen[e.Name]; n > 1 {
			name = fmt.Sprintf("%s#%d", e.Name, n)
		}
		order = append(order, name)
		byName[name] = e
	}
	return order, byName
}

// BenchCompare prints the regression deltas between two -bench-json
// artifacts: per matched experiment the cycle, IPC, cache-hit-ratio and
// wall-time movement, then the names only one side has.
func BenchCompare(w io.Writer, oldPath, newPath string) error {
	return BenchCompareGate(w, oldPath, newPath, 0)
}

// BenchCompareGate is BenchCompare with a regression gate: when
// failOverPct > 0, any matched experiment whose simulated cycle count
// grew by more than that percentage fails the comparison. The gate reads
// cycles — a deterministic property of the simulated machine — rather
// than wall time, so it never flakes on a slow CI host; wall movement is
// still printed for the humans.
func BenchCompareGate(w io.Writer, oldPath, newPath string, failOverPct float64) error {
	of, err := readBenchFile(oldPath)
	if err != nil {
		return err
	}
	nf, err := readBenchFile(newPath)
	if err != nil {
		return err
	}
	oldOrder, oldBy := benchNames(of)
	newOrder, newBy := benchNames(nf)

	fmt.Fprintf(w, "bench compare: %s -> %s\n\n", oldPath, newPath)
	fmt.Fprintf(w, "%-28s %14s %14s %9s %8s %8s %10s\n",
		"experiment", "cycles old", "cycles new", "delta", "ipc", "hit%", "wall ms")
	matched := 0
	var regressions []string
	for _, name := range newOrder {
		ne := newBy[name]
		oe, ok := oldBy[name]
		if !ok {
			continue
		}
		matched++
		fmt.Fprintf(w, "%-28s %14d %14d %9s %+8.3f %+8.2f %+10.1f\n",
			name, oe.Cycles, ne.Cycles, benchPctDelta(oe.Cycles, ne.Cycles),
			ne.IPC-oe.IPC, 100*(ne.CacheHitRatio-oe.CacheHitRatio), ne.WallMS-oe.WallMS)
		if failOverPct > 0 && oe.Cycles > 0 && ne.Cycles > oe.Cycles {
			if pct := 100 * (float64(ne.Cycles) - float64(oe.Cycles)) / float64(oe.Cycles); pct > failOverPct {
				regressions = append(regressions, fmt.Sprintf("%s: cycles %d -> %d (+%.1f%% > %.1f%%)",
					name, oe.Cycles, ne.Cycles, pct, failOverPct))
			}
		}
	}
	for _, name := range newOrder {
		if _, ok := oldBy[name]; !ok {
			fmt.Fprintf(w, "%-28s only in %s\n", name, newPath)
		}
	}
	for _, name := range oldOrder {
		if _, ok := newBy[name]; !ok {
			fmt.Fprintf(w, "%-28s only in %s\n", name, oldPath)
		}
	}
	fmt.Fprintf(w, "\n%d matched, %d old, %d new\n", matched, len(oldOrder), len(newOrder))
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintf(w, "REGRESSION %s\n", r)
		}
		return fmt.Errorf("%d experiment(s) regressed beyond %.1f%% cycles", len(regressions), failOverPct)
	}
	return nil
}

func benchPctDelta(before, after uint64) string {
	if before == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*(float64(after)-float64(before))/float64(before))
}
