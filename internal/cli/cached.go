package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mmt/internal/cluster"
	"mmt/internal/obs"
	"mmt/internal/obs/span"
)

// RunCached is the mmtcached command: the content-addressed remote result
// cache the fleet's persistent caches tier into. It serves the /v1/cache
// API until SIGINT/SIGTERM, then exits; entries live on disk, so restarts
// are warm.
func RunCached(args []string, stdout io.Writer) error {
	return runCached(args, stdout, os.Stderr, nil)
}

// runCached is RunCached with the progress stream exposed and an optional
// ready callback receiving the bound address (both for tests).
func runCached(args []string, stdout, progress io.Writer, ready func(addr string)) error {
	fs := flag.NewFlagSet("mmtcached", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		addr        = fs.String("addr", "127.0.0.1:8380", "listen address for the cache API")
		dir         = fs.String("dir", "", "entry directory (required)")
		maxBytes    = fs.Int64("max-bytes", 0, "byte budget; least-recently-used entries are evicted beyond it (0 = unlimited)")
		metricsAddr = fs.String("metrics-addr", "", "serve live metrics, expvar and pprof on this address")
		version     = fs.Bool("version", false, "print version and exit")
	)
	logf := addLogFlags(fs)
	dbg := addDebugFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		printVersion(stdout, "mmtcached")
		return nil
	}
	logger, err := logf.logger(progress)
	if err != nil {
		return err
	}
	if *dir == "" {
		return errors.New("-dir is required (entry directory)")
	}

	opts := cluster.CacheServerOptions{Dir: *dir, MaxBytes: *maxBytes}
	// The registry always exists: /metrics rides the main port for
	// mmtdoctor, and -metrics-addr additionally serves it on a side port.
	opts.Metrics = obs.NewRegistry()
	if *metricsAddr != "" {
		msrv, err := serveMetrics(*metricsAddr, opts.Metrics, progress)
		if err != nil {
			return err
		}
		defer msrv.Close()
	}
	// Bind before constructing the server: the tracer's service label
	// carries the resolved address, matching the rest of the fleet.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	service := "mmtcached@" + ln.Addr().String()
	opts.Tracer = span.NewTracer(service, span.DefaultCapacity)
	st := dbg.build(service, fs, opts.Metrics, opts.Tracer, logger, progress)
	defer st.Close()
	logger = st.Wrap(logger)
	opts.Log = logger.With("service", "mmtcached")
	opts.Flight = st.Flight
	opts.Debug = st.Handler
	srv, err := cluster.NewCacheServer(opts)
	if err != nil {
		ln.Close()
		return err
	}
	httpSrv := &http.Server{Handler: srv}
	if progress != nil {
		fmt.Fprintf(progress, "mmtcached %s serving on http://%s/v1/cache (%d entries, %d bytes)\n",
			Version(), ln.Addr(), srv.Store().Len(), srv.Store().Bytes())
		st.announce(progress, ln.Addr().String())
	}
	if ready != nil {
		ready(ln.Addr().String())
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)

	select {
	case err := <-serveErr:
		return err
	case sig := <-sigc:
		if progress != nil {
			fmt.Fprintf(progress, "mmtcached: received %s, shutting down\n", sig)
		}
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		httpSrv.Shutdown(sctx) //nolint:errcheck // bounded wait for in-flight puts
		scancel()
		if progress != nil {
			fmt.Fprintf(progress, "mmtcached: %d entries, %d bytes on disk; bye\n",
				srv.Store().Len(), srv.Store().Bytes())
		}
		return nil
	}
}
