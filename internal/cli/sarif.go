package cli

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"mmt/internal/static"
)

// SARIF 2.1.0 output for mmtcheck, minimal but schema-conforming: one
// run, one rule per distinct finding code, one result per finding. CI
// uploads the file so findings annotate pull requests.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations,omitempty"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation *sarifPhysical `json:"physicalLocation,omitempty"`
	LogicalLocations []sarifLogical `json:"logicalLocations,omitempty"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifLogical struct {
	// Name is the finding's PC rendered as hex — the closest thing an
	// assembled program has to a source coordinate.
	Name string `json:"name"`
	Kind string `json:"kind,omitempty"`
}

// sarifLevel maps the static severity scale onto SARIF's.
func sarifLevel(s static.Severity) string {
	switch s {
	case static.SevError:
		return "error"
	case static.SevWarning:
		return "warning"
	}
	return "note"
}

// writeSARIF renders the check results as one SARIF run. Rules are the
// distinct finding codes, sorted, so the index assignment is stable
// across runs of the same input set.
func writeSARIF(out io.Writer, results []CheckResult) error {
	codes := map[string]bool{}
	for _, r := range results {
		for _, f := range r.Findings {
			codes[f.Code] = true
		}
		for _, f := range r.CrossVal {
			codes[f.Code] = true
		}
	}
	ruleIDs := make([]string, 0, len(codes))
	for c := range codes { // mmtvet:ok — sorted immediately below
		ruleIDs = append(ruleIDs, c)
	}
	sort.Strings(ruleIDs)
	ruleIndex := map[string]int{}
	rules := make([]sarifRule, len(ruleIDs))
	for i, id := range ruleIDs {
		ruleIndex[id] = i
		rules[i] = sarifRule{ID: id, ShortDescription: sarifMessage{
			Text: strings.ReplaceAll(id, "-", " "),
		}}
	}

	run := sarifRun{
		Tool: sarifTool{Driver: sarifDriver{
			Name:  "mmtcheck",
			Rules: rules,
		}},
		Results: []sarifResult{},
	}
	emit := func(program string, f static.Finding, crossval bool) {
		msg := f.Msg
		if crossval {
			msg = "cross-validation: " + msg
		}
		run.Results = append(run.Results, sarifResult{
			RuleID:    f.Code,
			RuleIndex: ruleIndex[f.Code],
			Level:     sarifLevel(f.Sev),
			Message:   sarifMessage{Text: fmt.Sprintf("%s: %s", program, msg)},
			Locations: []sarifLocation{{
				PhysicalLocation: &sarifPhysical{ArtifactLocation: sarifArtifact{URI: program}},
				LogicalLocations: []sarifLogical{{Name: fmt.Sprintf("%#x", f.PC), Kind: "instruction"}},
			}},
		})
	}
	for _, r := range results {
		for _, f := range r.Findings {
			emit(r.Program, f, false)
		}
		for _, f := range r.CrossVal {
			emit(r.Program, f, true)
		}
	}

	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{run},
	})
}
