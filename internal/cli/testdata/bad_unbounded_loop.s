; seeded defect: the loop body has no exit edge and no halting
; terminator — the program can never leave it
; (mmtcheck: unbounded-loop, error)
        tid  r4
spin:   addi r4, r4, 1
        j    spin
