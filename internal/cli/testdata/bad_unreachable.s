; seeded defect: the block after halt has no incoming path
; (mmtcheck: unreachable, warning)
        tid  r4
        halt
dead:   addi r5, r0, 1
        j    dead
