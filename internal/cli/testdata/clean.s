; a sound program: every path halts, every read is dominated by a write
        tid  r4
        addi r5, r4, 1
        halt
