; seeded defect: the first store to the data base is overwritten by the
; second before anything loads it (mmtcheck: dead-store, error)
        li   r4, 0x100000
        li   r5, 1
        li   r6, 2
        st   r5, 0(r4)
        st   r6, 0(r4)
        halt
