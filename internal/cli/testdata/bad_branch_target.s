; seeded defect: the branch targets 0x5000, far past the end of the
; text segment (mmtcheck: branch-target, error)
        tid  r4
        bnez r4, 0x5000
        halt
