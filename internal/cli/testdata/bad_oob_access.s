; seeded defect: the load's value-set address (0x2000) lies past the end
; of the text segment and below the data segment, so no mapped memory
; can back it (mmtcheck: oob-access, error)
        li   r4, 0x2000
        ld   r5, 0(r4)
        halt
