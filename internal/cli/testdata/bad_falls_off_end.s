; seeded defect: no halt — the only execution path runs past the end
; of the text segment (mmtcheck: falls-off-end, error)
        tid  r4
        addi r5, r4, 1
