; seeded defect: r4 is read before any write reaches it, so it can only
; hold the loader's implicit zero (mmtcheck: read-before-write, warning)
        addi r5, r4, 1
        halt
