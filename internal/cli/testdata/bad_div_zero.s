; seeded defect: the divisor register is the hardwired zero, so the
; quotient is architecturally -1 on every path
; (mmtcheck: div-by-zero, error)
        li   r4, 7
        div  r5, r4, r0
        halt
