; seeded defect: the store's statically known address (4096 = 0x1000)
; lands inside the text segment — self-modifying code the simulator's
; fetch path would never observe (mmtcheck: store-to-text, error)
        li   r4, 4096
        st   r0, 0(r4)
        halt
