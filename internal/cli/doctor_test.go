package cli

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestDoctorEndToEnd boots a real fleet — mmtcached, two mmtserved nodes,
// mmtrouter — drives load through it, and proves the mmtdoctor acceptance
// scenario: one invocation produces a bundle holding every process's
// flight ring, metrics history and at least one merged CPU profile, with
// a triage report naming the slowest trace; the bundled flight rings stay
// renderable via -from-dump; and -watch holds or breaches thresholds with
// the right exit behavior.
func TestDoctorEndToEnd(t *testing.T) {
	var progress syncBuffer

	// Staggered profiler cadences: only one CPU profile can run per
	// process at a time, and distinct periods make the windows drift
	// apart so every daemon eventually lands captures.
	cachedAddr, cachedDone := startDaemon(t, "mmtcached", runCached,
		[]string{"-addr", "127.0.0.1:0", "-dir", t.TempDir(),
			"-profile-every", "300ms", "-history-every", "100ms"}, &progress)
	addrA, doneA := startDaemon(t, "mmtserved A", runServe,
		[]string{"-addr", "127.0.0.1:0", "-j", "2", "-cache-dir", t.TempDir(),
			"-remote-cache", "http://" + cachedAddr,
			"-profile-every", "370ms", "-history-every", "100ms"}, &progress)
	addrB, doneB := startDaemon(t, "mmtserved B", runServe,
		[]string{"-addr", "127.0.0.1:0", "-j", "2", "-cache-dir", t.TempDir(),
			"-remote-cache", "http://" + cachedAddr,
			"-profile-every", "430ms", "-history-every", "100ms"}, &progress)
	routerAddr, routerDone := startDaemon(t, "mmtrouter", runRouter,
		[]string{"-addr", "127.0.0.1:0", "-probe-every", "100ms",
			"-backends", "http://" + addrA + ",http://" + addrB,
			"-profile-every", "490ms", "-history-every", "100ms"}, &progress)

	var loadOut bytes.Buffer
	if err := runLoad([]string{"-server", "http://" + routerAddr, "-n", "8", "-c", "4",
		"-dup", "0.5", "-seed", "7"}, &loadOut, io.Discard); err != nil {
		t.Fatalf("mmtload: %v\n%s", err, loadOut.String())
	}
	// Let every history sampler tick a few more times and the staggered
	// CPU windows land at least one capture somewhere.
	time.Sleep(700 * time.Millisecond)

	bundleDir := filepath.Join(t.TempDir(), "bundle")
	var out bytes.Buffer
	if err := runDoctor([]string{"-server", "http://" + routerAddr,
		"-sources", "http://" + cachedAddr, "-out", bundleDir}, &out, &progress); err != nil {
		t.Fatalf("mmtdoctor: %v\n%s", err, out.String())
	}
	report := out.String()
	for _, want := range []string{"== mmtdoctor triage ==", "slowest trace: load-7-", "mmttrace -trace"} {
		if !strings.Contains(report, want) {
			t.Errorf("triage missing %q:\n%s", want, report)
		}
	}

	// The bundle covers all four processes, each with its flight ring and
	// metrics history.
	nodes, err := os.ReadDir(filepath.Join(bundleDir, "nodes"))
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 4 {
		t.Fatalf("bundle nodes = %d, want 4 (have %v)", len(nodes), names(nodes))
	}
	var merged, flights int
	for _, n := range nodes {
		nd := filepath.Join(bundleDir, "nodes", n.Name())
		for _, p := range []string{"flight.json", "metrics.json", "config.json"} {
			if _, err := os.Stat(filepath.Join(nd, p)); err != nil {
				t.Errorf("node %s missing %s", n.Name(), p)
			}
		}
		if _, err := os.Stat(filepath.Join(nd, "flight.json")); err == nil {
			flights++
		}
		if _, err := os.Stat(filepath.Join(nd, "cpu-merged.json")); err == nil {
			merged++
		}
	}
	if flights != 4 {
		t.Errorf("flight rings in bundle = %d, want 4", flights)
	}
	if merged == 0 {
		t.Error("no node holds a merged CPU profile")
	}
	if _, err := os.Stat(filepath.Join(bundleDir, "cluster.json")); err != nil {
		t.Error("bundle missing cluster.json")
	}
	if ts, err := os.ReadDir(filepath.Join(bundleDir, "traces")); err != nil || len(ts) == 0 {
		t.Errorf("bundle has no stitched traces: %v", err)
	}

	// A bundled flight ring is a dump document: -from-dump renders it,
	// the same path an operator takes with a SIGQUIT'd node's file.
	out.Reset()
	if err := runDoctor([]string{"-from-dump",
		filepath.Join(bundleDir, "nodes", nodes[0].Name(), "flight.json")}, &out, io.Discard); err != nil {
		t.Fatalf("mmtdoctor -from-dump: %v", err)
	}
	for _, want := range []string{"flight dump:", "process start"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-from-dump output missing %q:\n%s", want, out.String())
		}
	}

	// Watch mode: generous thresholds hold (exit zero after one clean
	// round); an absurd p99 bound breaches and errors out.
	out.Reset()
	if err := runDoctor([]string{"-server", "http://" + routerAddr, "-watch",
		"-max-queue", "100000", "-rounds", "1"}, &out, io.Discard); err != nil {
		t.Errorf("clean watch round errored: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "all thresholds held") {
		t.Errorf("watch output = %q", out.String())
	}
	out.Reset()
	if err := runDoctor([]string{"-server", "http://" + routerAddr, "-watch",
		"-max-job-p99", "1ns", "-rounds", "1"}, &out, io.Discard); err == nil {
		t.Errorf("breaching watch exited clean:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "BREACH") {
		t.Errorf("breach output = %q", out.String())
	}
	if err := runDoctor([]string{"-watch"}, io.Discard, io.Discard); err == nil {
		t.Error("-watch without thresholds accepted")
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	for name, done := range map[string]chan error{
		"mmtcached": cachedDone, "mmtserved A": doneA, "mmtserved B": doneB, "mmtrouter": routerDone,
	} {
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("%s exit: %v", name, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("%s did not exit after SIGTERM", name)
		}
	}
}

func names(es []os.DirEntry) []string {
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = e.Name()
	}
	return out
}
