// Package cli implements the command-line tools (mmtsim, mmtprofile,
// mmtbench, mmtpipe) as testable functions; the cmd/ mains are thin
// wrappers around these.
package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"mmt/internal/asm"
	"mmt/internal/core"
	"mmt/internal/obs"
	"mmt/internal/prof"
	"mmt/internal/prog"
	"mmt/internal/runner"
	"mmt/internal/sim"
	"mmt/internal/workloads"
)

// RunSim is the mmtsim command: run one workload under one configuration
// and print detailed statistics.
func RunSim(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mmtsim", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		appName  = fs.String("app", "ammp", "application name (see -list)")
		preset   = fs.String("preset", "MMT-FXR", "configuration: Base, MMT-F, MMT-FX, MMT-FXR, Limit")
		threads  = fs.Int("threads", 2, "hardware threads (1-4)")
		fhb      = fs.Int("fhb", 0, "override Fetch History Buffer entries (0 = Table 4 default)")
		fw       = fs.Int("fetchwidth", 0, "override fetch width (0 = Table 4 default)")
		lsports  = fs.Int("lsports", 0, "override load/store ports (0 = Table 4 default)")
		list     = fs.Bool("list", false, "list applications and exit")
		disasm   = fs.Bool("disasm", false, "print the application's disassembly and exit")
		equ      = fs.String("equ", "", "override kernel constants, e.g. MOVES=500,TSIZE=256")
		cacheDir = fs.String("cache-dir", "", "persistent result cache directory (empty = disabled)")
		timeout  = fs.Duration("timeout", 0, "simulation wall-clock timeout (0 = none)")
		outFile  = fs.String("out", "", "also write the outcome as canonical JSON (the cache/wire encoding) to this file")

		profileOut = fs.String("profile-out", "", "write a per-PC attribution profile (JSON, see prof.SchemaVersion) and print its top sites")
		profileTop = fs.Int("profile-top", 10, "sites in the printed attribution report (0 = all)")

		traceOut    = fs.String("trace-out", "", "write a Chrome trace-event JSON timeline (open in Perfetto); bypasses the result cache")
		eventsOut   = fs.String("events-out", "", "write the raw event stream as JSON lines; bypasses the result cache")
		sampleEvery = fs.Uint64("sample-every", 1000, "cycles between occupancy/IPC samples when tracing (0 = events only)")
		metricsAddr = fs.String("metrics-addr", "", "serve /metrics, expvar and pprof on this address while running")
		precheck    = fs.Bool("precheck", false, "statically analyze the program first (mmtcheck) and refuse to run on error findings")
		version     = fs.Bool("version", false, "print version and exit")
	)
	flf := addFlightFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		printVersion(out, "mmtsim")
		return nil
	}
	if err := validateTimeout(*timeout); err != nil {
		return err
	}

	if *list {
		fmt.Fprintf(out, "%-14s %-9s %-4s %s\n", "name", "suite", "mode", "about")
		for _, a := range append(workloads.All(), workloads.MP()...) {
			fmt.Fprintf(out, "%-14s %-9s %-4s %s\n", a.Name, a.Suite, a.Mode, a.About)
		}
		return nil
	}
	if *disasm {
		a, ok := workloads.ByName(*appName)
		if !ok {
			return fmt.Errorf("unknown application %q", *appName)
		}
		p, err := asm.Assemble(a.Name, a.Source)
		if err != nil {
			return err
		}
		fmt.Fprint(out, prog.Disassemble(p))
		return nil
	}

	mutate := func(c *core.Config) {
		if *fhb > 0 {
			c.FHBSize = *fhb
		}
		if *fw > 0 {
			c.FetchWidth = *fw
		}
		if *lsports > 0 {
			c.LSPorts = *lsports
			c.Mem.MSHRs = 4 * *lsports
		}
	}
	app, ok := workloads.ByName(*appName)
	if !ok {
		return fmt.Errorf("unknown application %q", *appName)
	}
	if *equ != "" {
		overrides, err := parseEqu(*equ)
		if err != nil {
			return err
		}
		app = app.Override(overrides)
	}
	if *precheck {
		if err := Precheck(app); err != nil {
			return err
		}
	}

	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		srv, err := serveMetrics(*metricsAddr, reg, os.Stderr)
		if err != nil {
			return err
		}
		defer srv.Close()
	}

	task := sim.Task{App: app, Preset: sim.Preset(*preset), Threads: *threads, Mutate: mutate}
	// Attribution is part of the task key, so a profiled run never collides
	// with an unprofiled cache entry (and vice versa).
	task.Attribution = *profileOut != ""

	if *traceOut != "" || *eventsOut != "" {
		// A traced run must actually simulate: the pool would serve a
		// cache or memo hit without replaying the event stream, so run
		// the task inline on this goroutine instead.
		rec, closeSinks, err := openTraceSinks(*traceOut, *eventsOut, "mmtsim", "thread", map[string]string{
			"version": Version(),
			"app":     app.Name,
			"preset":  *preset,
			"threads": strconv.Itoa(*threads),
		})
		if err != nil {
			return err
		}
		task.Trace = rec
		task.SampleEvery = *sampleEvery
		o, err := task.Execute()
		if cerr := closeSinks(); cerr != nil && err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		if err := writeOutcome(*outFile, o); err != nil {
			return err
		}
		printResult(out, o.Result)
		prof.PublishCoreStats(reg, o.Result.Stats)
		return emitProfile(out, *profileOut, *profileTop, o)
	}

	// Even a single simulation goes through the runner, so mmtsim shares
	// mmtbench's persistent cache, timeout and panic isolation.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// The always-on flight recorder rides the pool's job timeline; a
	// captured worker panic or SIGQUIT dumps the ring to disk.
	fl, dumpDir := flf.build("mmtsim", os.Stderr)
	pool, err := runner.New(ctx, runner.Options{Workers: 1, CacheDir: *cacheDir, Timeout: *timeout,
		Metrics: reg, Trace: fl, Flight: fl, FlightDumpDir: dumpDir})
	if err != nil {
		return err
	}
	defer pool.Close()
	o, err := pool.Do(task)
	if err != nil {
		return err
	}
	if err := writeOutcome(*outFile, o); err != nil {
		return err
	}
	printResult(out, o.Result)
	prof.PublishCoreStats(reg, o.Result.Stats)
	return emitProfile(out, *profileOut, *profileTop, o)
}

// emitProfile writes the outcome's attribution profile behind -profile-out
// and prints its top-N report; path "" disables it.
func emitProfile(out io.Writer, path string, topN int, o *sim.Outcome) error {
	if path == "" {
		return nil
	}
	if o.Attribution == nil {
		return fmt.Errorf("outcome has no attribution profile (produced by a pre-profiler build?)")
	}
	b, err := o.Attribution.Marshal()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return err
	}
	fmt.Fprintln(out)
	prof.WriteReport(out, o.Attribution, topN)
	return nil
}

// writeOutcome writes the canonical outcome encoding behind -out; path ""
// disables it.
func writeOutcome(path string, o *sim.Outcome) error {
	if path == "" {
		return nil
	}
	b, err := sim.MarshalOutcome(o)
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// parseEqu parses "NAME=VAL,NAME=VAL" override lists.
func parseEqu(s string) (map[string]int64, error) {
	out := make(map[string]int64)
	for _, pair := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return nil, fmt.Errorf("bad -equ entry %q (want NAME=VALUE)", pair)
		}
		n, err := strconv.ParseInt(strings.TrimSpace(val), 0, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -equ value in %q: %v", pair, err)
		}
		out[strings.TrimSpace(name)] = n
	}
	return out, nil
}

func printResult(out io.Writer, r *sim.Result) {
	s := r.Stats
	fmt.Fprintf(out, "%s / %s / %d threads\n\n", r.App, r.Preset, r.Threads)
	fmt.Fprintf(out, "cycles               %12d\n", s.Cycles)
	fmt.Fprintf(out, "committed insts      %12d  (IPC %.3f)\n", s.TotalCommitted(), s.IPC())
	for t := 0; t < r.Threads; t++ {
		fmt.Fprintf(out, "  thread %d           %12d\n", t, s.Committed[t])
	}
	fmt.Fprintf(out, "fetch operations     %12d\n", s.FetchAccesses)
	fmt.Fprintf(out, "executed uops        %12d\n", s.IssuedUops)
	fmt.Fprintf(out, "branches             %12d  (%d mispredicted)\n", s.BranchUops, s.Mispredicts)

	m, d, cu := s.FetchModeFractions()
	fmt.Fprintf(out, "\nfetch modes          MERGE %.1f%%  DETECT %.1f%%  CATCHUP %.1f%%\n", 100*m, 100*d, 100*cu)
	x, xr, f, n := s.IdenticalFractions()
	fmt.Fprintf(out, "commit classes       exec-ident %.1f%%  +regmerge %.1f%%  fetch-ident %.1f%%  not-ident %.1f%%\n",
		100*x, 100*xr, 100*f, 100*n)
	fmt.Fprintf(out, "synchronization      %d divergences, %d remerges, %d catchups (%d aborted)\n",
		s.Divergences, s.Remerges, s.CatchupsStarted, s.CatchupsAborted)
	fmt.Fprintf(out, "                     %.1f%% of remerges within 512 taken branches\n", 100*s.RemergeWithin(512))
	fmt.Fprintf(out, "LVIP                 %d rollbacks\n", s.LVIPRollbacks)
	fmt.Fprintf(out, "register merging     %d compares, %d merges\n", s.RegMergeCompares, s.RegMergeHits)

	fmt.Fprintf(out, "\nmemory               L1I %d  L1D %d  L2 %d  DRAM %d accesses\n",
		r.Mem.L1IAccesses, r.Mem.L1DAccesses, r.Mem.L2Accesses, r.Mem.DRAMAccesses)
	e := r.Energy
	fmt.Fprintf(out, "energy (pJ)          cache %.0f  MMT-overhead %.0f (%.2f%%)  other %.0f\n",
		e.Cache, e.Overhead, 100*e.Overhead/e.Total(), e.Other)
	fmt.Fprintf(out, "energy per job       %.1f pJ/instruction\n", r.EnergyPerJob)
}
