package cli

import (
	"fmt"
	"io"
	"os"

	"mmt/internal/obs"
)

// openTraceSinks builds the recorder behind the -trace-out / -events-out
// flags: a Chrome trace-event file (opens in Perfetto or chrome://tracing),
// a JSONL event log, or both fanned out. The returned close function
// finalizes every sink and closes the files, reporting the first error —
// a truncated trace would otherwise silently fail to load in the viewer.
func openTraceSinks(traceOut, eventsOut, process, trackPrefix string, meta map[string]string) (obs.Recorder, func() error, error) {
	var (
		sinks []obs.Recorder
		files []*os.File
	)
	open := func(path string) (*os.File, error) {
		f, err := os.Create(path)
		if err != nil {
			for _, g := range files {
				g.Close()
			}
			return nil, err
		}
		files = append(files, f)
		return f, nil
	}
	if traceOut != "" {
		f, err := open(traceOut)
		if err != nil {
			return nil, nil, err
		}
		sinks = append(sinks, obs.NewChromeTrace(f, obs.ChromeTraceConfig{
			Process: process, TrackPrefix: trackPrefix, Meta: meta,
		}))
	}
	if eventsOut != "" {
		f, err := open(eventsOut)
		if err != nil {
			return nil, nil, err
		}
		sinks = append(sinks, obs.NewJSONL(f, meta))
	}
	rec := obs.Multi(sinks...)
	closeAll := func() error {
		err := rec.Close()
		for _, f := range files {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("closing %s: %w", f.Name(), cerr)
			}
		}
		return err
	}
	return rec, closeAll, nil
}

// serveMetrics starts the -metrics-addr listener and announces it on the
// progress stream (never stdout, which stays reserved for results).
func serveMetrics(addr string, reg *obs.Registry, progress io.Writer) (*obs.Server, error) {
	srv, err := obs.Serve(addr, reg)
	if err != nil {
		return nil, err
	}
	if progress != nil {
		fmt.Fprintf(progress, "serving metrics on http://%s/metrics (expvar at /debug/vars, pprof at /debug/pprof)\n", srv.Addr())
	}
	return srv, nil
}
