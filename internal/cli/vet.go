package cli

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"strings"

	"mmt/internal/lint"
)

// defaultVetRoots are the simulation entry packages whose import closure
// must stay deterministic.
var defaultVetRoots = []string{"mmt/internal/core", "mmt/internal/sim"}

// RunVet is the mmtvet command: the determinism linter over the
// simulation packages' import closure.
func RunVet(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mmtvet", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		dir     = fs.String("dir", ".", "module root (where go.mod lives)")
		roots   = fs.String("roots", strings.Join(defaultVetRoots, ","), "comma-separated root import paths whose closure is checked")
		format  = fs.String("format", "text", "output format: text or json")
		version = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		printVersion(out, "mmtvet")
		return nil
	}
	if *format != "text" && *format != "json" {
		return fmt.Errorf("unknown -format %q (want text or json)", *format)
	}
	var rootList []string
	for _, r := range strings.Split(*roots, ",") {
		if r = strings.TrimSpace(r); r != "" {
			rootList = append(rootList, r)
		}
	}
	if len(rootList) == 0 {
		return fmt.Errorf("no roots to check")
	}

	findings, err := lint.Check(*dir, rootList)
	if err != nil {
		return err
	}
	switch *format {
	case "json":
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			return err
		}
	default:
		for _, f := range findings {
			fmt.Fprintln(out, f)
		}
		if len(findings) == 0 {
			fmt.Fprintf(out, "mmtvet: clean: no nondeterminism in the closure of %s\n", strings.Join(rootList, ", "))
		}
	}
	if len(findings) > 0 {
		return fmt.Errorf("%d determinism findings", len(findings))
	}
	return nil
}
