package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"syscall"
	"time"

	"mmt/internal/cluster"
	"mmt/internal/obs"
	"mmt/internal/obs/span"
	"mmt/internal/runner"
	"mmt/internal/serve"
)

// RunServe is the mmtserved command: the simulation-as-a-service daemon.
// It serves the /v1 job API until SIGINT/SIGTERM, then drains — stops
// admitting, finishes in-flight jobs (bounded by -drain-timeout) — and
// exits; a second signal aborts the drain.
func RunServe(args []string, stdout io.Writer) error {
	return runServe(args, stdout, os.Stderr, nil)
}

// runServe is RunServe with the progress stream exposed and an optional
// ready callback receiving the bound address (both for tests).
func runServe(args []string, stdout, progress io.Writer, ready func(addr string)) error {
	fs := flag.NewFlagSet("mmtserved", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		addr     = fs.String("addr", "127.0.0.1:8377", "listen address for the job API")
		jobs     = fs.Int("j", runtime.NumCPU(), "parallel simulation workers")
		cacheDir = fs.String("cache-dir", "", "persistent result cache directory (empty = disabled)")
		cacheMax = fs.Int64("cache-max-bytes", 0, "persistent cache byte budget; least-recently-used entries are evicted beyond it (0 = unlimited)")
		remote   = fs.String("remote-cache", "", "mmtcached base URL the persistent cache tiers into, e.g. http://127.0.0.1:8380 (empty = disabled)")
		timeout  = fs.Duration("timeout", 0, "per-simulation wall-clock timeout (0 = none)")
		retries  = fs.Int("retries", 1, "extra attempts for a failed simulation")

		queue        = fs.Int("queue", 64, "admission queue capacity; beyond it submissions get 429 + Retry-After")
		precheck     = fs.Bool("precheck", false, "statically analyze submitted programs and reject error findings with 400 (see mmtcheck)")
		deadline     = fs.Duration("deadline", 0, "default queued-deadline for submissions that carry none (0 = none)")
		drainTimeout = fs.Duration("drain-timeout", time.Minute, "how long a signal-triggered drain waits for in-flight jobs")

		traceOut    = fs.String("trace-out", "", "write a Chrome trace-event JSON timeline of the runner's workers (open in Perfetto)")
		eventsOut   = fs.String("events-out", "", "write the runner's job timeline as JSONL events")
		sampleEvery = fs.Duration("sample-every", 250*time.Millisecond, "interval between worker-utilization samples on the trace")
		metricsAddr = fs.String("metrics-addr", "", "serve live metrics, expvar and pprof on this address")
		version     = fs.Bool("version", false, "print version and exit")
	)
	logf := addLogFlags(fs)
	dbg := addDebugFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		printVersion(stdout, "mmtserved")
		return nil
	}
	logger, err := logf.logger(progress)
	if err != nil {
		return err
	}
	if err := validateTimeout(*timeout); err != nil {
		return err
	}
	if err := validateRetries(*retries); err != nil {
		return err
	}
	if *traceOut != "" || *eventsOut != "" {
		if err := validateSampleEvery(*sampleEvery); err != nil {
			return err
		}
	}

	// rootCtx is the pool's hard-abort context: canceled when the drain
	// deadline expires or a second signal arrives.
	rootCtx, abort := context.WithCancel(context.Background())
	defer abort()

	opts := serve.Options{
		Runner: runner.Options{
			Workers:       *jobs,
			CacheDir:      *cacheDir,
			CacheMaxBytes: *cacheMax,
			Timeout:       *timeout,
			Retries:       *retries,
			Progress:      progress,
		},
		MaxQueue:        *queue,
		DefaultDeadline: *deadline,
		Precheck:        *precheck,
	}
	if *remote != "" {
		opts.Runner.RemoteCache = cluster.NewCacheClient(*remote, nil)
	}
	// The registry always exists: /metrics rides the main port for
	// mmtdoctor, and -metrics-addr additionally serves it with expvar and
	// pprof on a side port.
	opts.Metrics = obs.NewRegistry()
	if *metricsAddr != "" {
		msrv, err := serveMetrics(*metricsAddr, opts.Metrics, progress)
		if err != nil {
			return err
		}
		defer msrv.Close()
	}
	var closeTrace func() error
	if *traceOut != "" || *eventsOut != "" {
		rec, closeSinks, err := openTraceSinks(*traceOut, *eventsOut, "mmtserved runner", "worker",
			map[string]string{"version": Version(), "workers": strconv.Itoa(*jobs)})
		if err != nil {
			return err
		}
		opts.Runner.Trace = rec
		opts.Runner.TraceSampleEvery = *sampleEvery
		closeTrace = closeSinks
	}

	// Bind before constructing the server: the tracer's service label
	// carries the resolved address, so a stitched fleet waterfall names
	// the node each span ran on.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		if closeTrace != nil {
			closeTrace()
		}
		return err
	}
	service := "mmtserved@" + ln.Addr().String()
	opts.Tracer = span.NewTracer(service, span.DefaultCapacity)
	// The diagnostics stack: flight ring (fed admission/completion edges,
	// finished spans, log lines and the runner's job timeline), continuous
	// profiler, metrics history, SIGQUIT dump.
	st := dbg.build(service, fs, opts.Metrics, opts.Tracer, logger, progress)
	defer st.Close()
	logger = st.Wrap(logger)
	opts.Log = logger.With("service", "mmtserved")
	opts.Flight = st.Flight
	opts.Debug = st.Handler
	opts.Runner.FlightDumpDir = st.DumpDir
	if opts.Runner.Trace != nil {
		opts.Runner.Trace = obs.Multi(opts.Runner.Trace, st.Flight)
	} else {
		opts.Runner.Trace = st.Flight
	}

	srv, err := serve.New(rootCtx, opts)
	if err != nil {
		ln.Close()
		if closeTrace != nil {
			closeTrace()
		}
		return err
	}
	httpSrv := &http.Server{Handler: srv}
	if progress != nil {
		fmt.Fprintf(progress, "mmtserved %s serving on http://%s/v1 (%d workers, queue %d)\n",
			Version(), ln.Addr(), srv.Pool().Summary().Workers, *queue)
		st.announce(progress, ln.Addr().String())
	}
	if ready != nil {
		ready(ln.Addr().String())
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)

	select {
	case err := <-serveErr:
		srv.Close()
		if closeTrace != nil {
			closeTrace()
		}
		return err
	case sig := <-sigc:
		if progress != nil {
			fmt.Fprintf(progress, "mmtserved: received %s, draining (timeout %s; signal again to abort)\n", sig, *drainTimeout)
		}
		go func() {
			<-sigc // second signal: abort in-flight simulations
			abort()
		}()
		dctx, dcancel := context.WithTimeout(context.Background(), *drainTimeout)
		derr := srv.Drain(dctx)
		dcancel()
		if derr != nil {
			if progress != nil {
				fmt.Fprintf(progress, "mmtserved: %v; aborting\n", derr)
			}
			abort()
		}
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		httpSrv.Shutdown(sctx) //nolint:errcheck // drain already bounded the wait
		scancel()
		srv.Close()
		if closeTrace != nil {
			if cerr := closeTrace(); cerr != nil && derr == nil {
				derr = cerr
			}
		}
		if progress != nil {
			s := srv.Pool().Summary()
			if s.Jobs > 0 {
				fmt.Fprint(progress, s.Format())
			}
			fmt.Fprintln(progress, "mmtserved: drained, bye")
		}
		return derr
	}
}
