package cli

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mmt/internal/prof"
	"mmt/internal/sim"
	"mmt/internal/workloads"
)

// RunProfile is the mmtprofile command. Without -from-run it computes the
// §3 motivation study (Fig. 1 and Fig. 2) from aligned functional traces;
// with -from-run it renders (or, with -diff, compares) per-PC attribution
// profiles written by mmtsim/mmtbench/mmtload -profile-out.
func RunProfile(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mmtprofile", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		appName  = fs.String("app", "", "profile a single application (default: all)")
		maxInsts = fs.Int("maxinsts", 1_000_000, "per-context dynamic instruction cap")
		fromRun  = fs.String("from-run", "", "render an attribution profile: a -profile-out JSON file or a -out outcome file with an embedded profile")
		diffWith = fs.String("diff", "", "with -from-run: second profile to diff against (-from-run = before, -diff = after)")
		topN     = fs.Int("top", 10, "sites in the attribution report (0 = all)")
		version  = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		printVersion(out, "mmtprofile")
		return nil
	}
	if *diffWith != "" && *fromRun == "" {
		return fmt.Errorf("-diff requires -from-run")
	}
	if *fromRun != "" {
		before, err := loadProfileFile(*fromRun)
		if err != nil {
			return err
		}
		if *diffWith == "" {
			return prof.WriteReport(out, before, *topN)
		}
		after, err := loadProfileFile(*diffWith)
		if err != nil {
			return err
		}
		return prof.WriteDiff(out, before, after, *topN)
	}

	apps := workloads.All()
	if *appName != "" {
		a, ok := workloads.ByName(*appName)
		if !ok {
			return fmt.Errorf("unknown application %q", *appName)
		}
		apps = []workloads.App{a}
	}

	ex := sim.NewSerial()
	rows1, err := sim.Figure1(ex, apps, *maxInsts)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, sim.FormatFig1(rows1))

	rows2, err := sim.Figure2(ex, apps, *maxInsts)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, sim.FormatFig2(rows2))
	return nil
}

// loadProfileFile reads an attribution profile from either encoding: a
// bare profile JSON (-profile-out) or a canonical outcome (-out /
// serve outcome blob) carrying an embedded profile.
func loadProfileFile(path string) (*prof.Profile, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if p, perr := prof.ParseProfile(b); perr == nil {
		return p, nil
	}
	o, oerr := sim.UnmarshalOutcome(b)
	if oerr != nil {
		return nil, fmt.Errorf("%s is neither a profile nor an outcome: %v", path, oerr)
	}
	if o.Attribution == nil {
		return nil, fmt.Errorf("%s: outcome has no attribution profile (rerun with -profile-out or task attribution)", path)
	}
	if err := o.Attribution.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return o.Attribution, nil
}
