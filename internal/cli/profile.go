package cli

import (
	"flag"
	"fmt"
	"io"

	"mmt/internal/sim"
	"mmt/internal/workloads"
)

// RunProfile is the mmtprofile command: the §3 motivation study (Fig. 1
// and Fig. 2) computed from aligned functional traces.
func RunProfile(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mmtprofile", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		appName  = fs.String("app", "", "profile a single application (default: all)")
		maxInsts = fs.Int("maxinsts", 1_000_000, "per-context dynamic instruction cap")
		version  = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		printVersion(out, "mmtprofile")
		return nil
	}

	apps := workloads.All()
	if *appName != "" {
		a, ok := workloads.ByName(*appName)
		if !ok {
			return fmt.Errorf("unknown application %q", *appName)
		}
		apps = []workloads.App{a}
	}

	ex := sim.NewSerial()
	rows1, err := sim.Figure1(ex, apps, *maxInsts)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, sim.FormatFig1(rows1))

	rows2, err := sim.Figure2(ex, apps, *maxInsts)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, sim.FormatFig2(rows2))
	return nil
}
