package cli

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"mmt/internal/obs"
	"mmt/internal/prof"
)

// syncBuffer guards a bytes.Buffer: the daemon's progress stream is
// written from several goroutines.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestServeAndLoadEndToEnd boots the daemon on an ephemeral port, drives
// it with the load generator, then drains it with SIGTERM — the same
// lifecycle the CI smoke step runs against the built binaries.
func TestServeAndLoadEndToEnd(t *testing.T) {
	addrc := make(chan string, 1)
	done := make(chan error, 1)
	var stdout, progress syncBuffer
	go func() {
		done <- runServe([]string{"-addr", "127.0.0.1:0", "-j", "2", "-queue", "8"},
			&stdout, &progress, func(a string) { addrc <- a })
	}()
	var addr string
	select {
	case addr = <-addrc:
	case err := <-done:
		t.Fatalf("daemon exited before listening: %v", err)
	}

	var loadOut bytes.Buffer
	if err := runLoad([]string{"-server", "http://" + addr, "-n", "6", "-c", "3",
		"-dup", "0.5", "-seed", "2"}, &loadOut, io.Discard); err != nil {
		t.Fatalf("mmtload: %v\n%s", err, loadOut.String())
	}
	out := loadOut.String()
	for _, want := range []string{"jobs/s", "latency: p50", "server:  simulated=", "0 failed"} {
		if !strings.Contains(out, want) {
			t.Errorf("load report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "simulated=0 ") {
		t.Errorf("load run simulated nothing:\n%s", out)
	}

	// A second identical run is served without new simulations: every
	// spec is now in the pool's memo. Its -events-out timeline records a
	// span per job and a cache-hit marker for each served outcome.
	events := filepath.Join(t.TempDir(), "load.jsonl")
	var warm bytes.Buffer
	if err := runLoad([]string{"-server", "http://" + addr, "-n", "6", "-c", "3",
		"-dup", "0.5", "-seed", "2", "-events-out", events}, &warm, io.Discard); err != nil {
		t.Fatalf("warm mmtload: %v", err)
	}
	if !strings.Contains(warm.String(), "simulated=0 ") {
		t.Errorf("warm run re-simulated:\n%s", warm.String())
	}
	f, err := os.Open(events)
	if err != nil {
		t.Fatal(err)
	}
	lines, err := obs.DecodeJSONL(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	jobsSeen, hits := 0, 0
	traces := map[string]int{}
	counters := map[string]uint64{}
	for _, l := range lines {
		if l.Event == nil {
			continue
		}
		switch l.Event.Kind {
		case obs.EvJob:
			jobsSeen++
			traces[l.Event.Trace]++
		case obs.EvCacheHit:
			hits++
		case obs.EvCounter:
			counters[l.Event.Name] = l.Event.Arg
		}
	}
	if jobsSeen != 6 || hits != 6 {
		t.Errorf("events = %d job spans, %d cache hits; want 6 and 6", jobsSeen, hits)
	}
	// Deterministic per-job correlation ids: seed 2, positions 0..5, each
	// on exactly one span.
	for i := 0; i < 6; i++ {
		if id := fmt.Sprintf("load-2-%d", i); traces[id] != 1 {
			t.Errorf("trace id %s on %d spans, want 1 (%v)", id, traces[id], traces)
		}
	}
	if counters["load-served-cache"] != 6 || counters["load-served-simulated"] != 0 {
		t.Errorf("final counters wrong on a warm run: %v", counters)
	}

	// An attributed run uses distinct task keys (attribution is in the
	// key), so the server simulates afresh, embeds a profile in each
	// outcome, and the client merges them into one file.
	pfile := filepath.Join(t.TempDir(), "load-profile.json")
	var attr bytes.Buffer
	if err := runLoad([]string{"-server", "http://" + addr, "-n", "4", "-c", "2",
		"-dup", "0", "-seed", "3", "-attribution", "-profile-out", pfile}, &attr, io.Discard); err != nil {
		t.Fatalf("attributed mmtload: %v\n%s", err, attr.String())
	}
	if !strings.Contains(attr.String(), "attribution: ") {
		t.Errorf("attributed run printed no CPI summary:\n%s", attr.String())
	}
	pb, err := os.ReadFile(pfile)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := prof.ParseProfile(pb)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Cycles == 0 {
		t.Error("merged load profile is empty")
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain after SIGTERM")
	}
	if got := progress.String(); !strings.Contains(got, "drained, bye") {
		t.Errorf("progress missing drain farewell:\n%s", got)
	}
}

func TestServeVersionFlag(t *testing.T) {
	var out bytes.Buffer
	if err := runServe([]string{"-version"}, &out, io.Discard, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "mmtserved") {
		t.Errorf("version output = %q", out.String())
	}
	out.Reset()
	if err := runLoad([]string{"-version"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "mmtload") {
		t.Errorf("version output = %q", out.String())
	}
}

func TestLoadRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := runLoad([]string{"-n", "0"}, &out, io.Discard); err == nil {
		t.Error("-n 0 accepted")
	}
	if err := runLoad([]string{"-dup", "1.5"}, &out, io.Discard); err == nil {
		t.Error("-dup 1.5 accepted")
	}
}
