package cli

import (
	"flag"
	"fmt"
	"io"
	"strings"

	"mmt/internal/core"
	"mmt/internal/obs"
	"mmt/internal/sim"
	"mmt/internal/workloads"
)

// RunPipe is the mmtpipe command: a cycle-by-cycle pipeline trace. The
// per-cycle event column is driven by the core's obs event stream — the
// same one -trace-out captures — collected through an obs.Collector, so
// mmtpipe shows exactly what a trace file would contain instead of
// re-deriving events from statistics deltas.
func RunPipe(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mmtpipe", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		appName = fs.String("app", "equake", "application name")
		preset  = fs.String("preset", "MMT-FXR", "configuration preset")
		threads = fs.Int("threads", 2, "hardware threads")
		from    = fs.Uint64("from", 0, "skip to this cycle before tracing")
		cycles  = fs.Uint64("cycles", 80, "cycles to trace")
		dump    = fs.Uint64("dump", 0, "also print full machine state every N traced cycles (0 = off)")
		stalls  = fs.Bool("stalls", false, "also show stall-cause edges in the event column")
		version = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		printVersion(out, "mmtpipe")
		return nil
	}

	app, ok := workloads.ByName(*appName)
	if !ok {
		return fmt.Errorf("unknown application %q", *appName)
	}
	cfg, err := sim.Configure(sim.Preset(*preset), *threads)
	if err != nil {
		return err
	}
	sys, err := app.Build(*threads, sim.Preset(*preset).IdenticalInputs())
	if err != nil {
		return err
	}
	c, err := core.New(cfg, sys)
	if err != nil {
		return err
	}

	st := c.Stats()
	for st.Cycles < *from {
		c.Cycle()
	}

	// Attach only after the warmup skip, so the collector holds just the
	// traced window.
	col := obs.NewCollector()
	c.Attach(col, 0)

	fmt.Fprintf(out, "%s / %s / %dT — tracing cycles %d..%d\n", app.Name, *preset, *threads, *from, *from+*cycles)
	fmt.Fprintf(out, "%8s %6s %6s %6s %6s %7s %6s %5s  %s\n",
		"cycle", "fetch", "renam", "issue", "commit", "mode", "div", "merg", "events")
	prev := *st
	for i := uint64(0); i < *cycles; i++ {
		c.Cycle()
		cur := *st
		fmt.Fprintf(out, "%8d %6d %6d %6d %6d %7s %6d %5d %s\n",
			cur.Cycles,
			cur.FetchAccesses-prev.FetchAccesses,
			cur.RenamedUops-prev.RenamedUops,
			cur.IssuedUops-prev.IssuedUops,
			cur.CommittedUops-prev.CommittedUops,
			modeGlyph(modeOfCycle(&prev, &cur)),
			cur.Divergences, cur.Remerges,
			formatEvents(col.Drain(), *stalls))
		if *dump > 0 && (i+1)%*dump == 0 {
			fmt.Fprintln(out, c.DumpState())
		}
		prev = cur
	}
	fmt.Fprintf(out, "\ntotals: committed %d per-thread instructions in %d cycles (IPC %.2f)\n",
		st.TotalCommitted(), st.Cycles, st.IPC())
	return nil
}

// formatEvents renders one cycle's drained events as the trailing trace
// column. Fetch-mode edges are skipped (the mode column already shows the
// mix) and stall edges only appear with -stalls.
func formatEvents(events []obs.Event, stalls bool) string {
	var b strings.Builder
	for _, e := range events {
		switch e.Kind {
		case obs.EvDiverge:
			fmt.Fprintf(&b, " DIVERGE@%#x(t%d→%d)", e.PC, e.Track, e.Arg)
		case obs.EvRemerge:
			fmt.Fprintf(&b, " REMERGE(%d members)", e.Arg)
		case obs.EvCatchupStart:
			fmt.Fprintf(&b, " CATCHUP(t%d→%#x)", e.Arg, e.PC)
		case obs.EvCatchupAbort:
			fmt.Fprintf(&b, " CATCHUP-ABORT(t%d)", e.Track)
		case obs.EvRollback:
			fmt.Fprintf(&b, " ROLLBACK@%#x", e.PC)
		case obs.EvSquash:
			fmt.Fprintf(&b, " SQUASH×%d", e.Arg)
		case obs.EvMispredict:
			fmt.Fprintf(&b, " MISPRED(t%d)", e.Track)
		case obs.EvStall:
			if stalls && obs.StallCause(e.Arg) != obs.StallNone {
				fmt.Fprintf(&b, " stall:%s", obs.StallCause(e.Arg))
			}
		}
	}
	return b.String()
}

// modeOfCycle returns the per-thread instructions fetched this cycle in
// each mode.
func modeOfCycle(prev, cur *core.Stats) (m, d, cu uint64) {
	return cur.FetchedByMode[core.FetchMerge] - prev.FetchedByMode[core.FetchMerge],
		cur.FetchedByMode[core.FetchDetect] - prev.FetchedByMode[core.FetchDetect],
		cur.FetchedByMode[core.FetchCatchup] - prev.FetchedByMode[core.FetchCatchup]
}

func modeGlyph(m, d, cu uint64) string {
	switch {
	case m == 0 && d == 0 && cu == 0:
		return "-"
	case m > 0 && d == 0 && cu == 0:
		return "MERGE"
	case cu > 0:
		return "CATCHUP"
	case d > 0 && m == 0:
		return "DETECT"
	default:
		return "mixed"
	}
}
