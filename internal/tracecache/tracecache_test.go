package tracecache

import "testing"

func TestLookupMissThenHit(t *testing.T) {
	tc := New(1 << 20)
	if _, ok := tc.Lookup(0x1000); ok {
		t.Error("cold lookup hit")
	}
	tc.Insert(0x1000, 8, 2)
	br, ok := tc.Lookup(0x1000)
	if !ok || br != 2 {
		t.Errorf("lookup = %d/%v", br, ok)
	}
	if tc.Hits != 1 || tc.Misses != 1 {
		t.Errorf("hits/misses = %d/%d", tc.Hits, tc.Misses)
	}
}

func TestInsertReplacesSameStart(t *testing.T) {
	tc := New(1 << 20)
	tc.Insert(0x1000, 8, 1)
	tc.Insert(0x1000, 16, 3)
	if tc.Len() != 1 {
		t.Errorf("len = %d", tc.Len())
	}
	br, _ := tc.Lookup(0x1000)
	if br != 3 {
		t.Errorf("branches = %d", br)
	}
	if tc.used != 16 {
		t.Errorf("used = %d", tc.used)
	}
}

func TestCapacityEviction(t *testing.T) {
	// Capacity for exactly 4 slots of 16 instructions.
	tc := New(4 * 16 * instSlotBytes)
	for i := 0; i < 4; i++ {
		tc.Insert(uint64(i)*0x100, 16, 1)
	}
	// Touch trace 0 so trace at 0x100 is LRU.
	tc.Lookup(0x000)
	tc.Insert(0x900, 16, 1)
	if _, ok := tc.Lookup(0x100); ok {
		t.Error("LRU trace survived eviction")
	}
	if _, ok := tc.Lookup(0x000); !ok {
		t.Error("MRU trace evicted")
	}
	if tc.used > tc.capInsts {
		t.Errorf("used %d exceeds capacity %d", tc.used, tc.capInsts)
	}
}

func TestDisabledCache(t *testing.T) {
	tc := New(0)
	tc.Insert(0x1000, 8, 1)
	if _, ok := tc.Lookup(0x1000); ok {
		t.Error("disabled cache hit")
	}
}

func TestBuilderFlushOnInstLimit(t *testing.T) {
	tc := New(1 << 20)
	b := NewBuilder(tc)
	for i := 0; i < MaxInsts; i++ {
		b.Retire(0x1000+uint64(i)*4, false)
	}
	if _, ok := tc.Lookup(0x1000); !ok {
		t.Error("trace not inserted after MaxInsts")
	}
	// Builder restarted: next retire begins a new trace.
	b.Retire(0x5000, false)
	if b.startPC != 0x5000 {
		t.Errorf("builder start = %#x", b.startPC)
	}
}

func TestBuilderFlushOnBranchLimit(t *testing.T) {
	tc := New(1 << 20)
	b := NewBuilder(tc)
	b.Retire(0x1000, false)
	b.Retire(0x1004, true)
	b.Retire(0x2000, true)
	b.Retire(0x3000, true) // third taken branch: flush
	br, ok := tc.Lookup(0x1000)
	if !ok || br != MaxBranches {
		t.Errorf("trace = %d/%v", br, ok)
	}
}

func TestBuilderTracksContiguity(t *testing.T) {
	tc := New(1 << 20)
	b := NewBuilder(tc)
	// Partial trace is not visible until flushed.
	b.Retire(0x1000, false)
	if _, ok := tc.Lookup(0x1000); ok {
		t.Error("partial trace visible")
	}
}
