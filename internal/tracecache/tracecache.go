// Package tracecache models the trace cache of the baseline core (§5 of
// the MMT paper: 1 MB, perfect trace prediction). Traces are built at
// commit from the retired instruction stream; a fetch-time hit lets the
// front end fetch through up to MaxBranches taken branches in one cycle.
//
// The paper reports the trace cache had a negligible effect on its
// results; it is modeled here because the baseline is defined with it and
// because shared fetch interacts with front-end bandwidth.
package tracecache

// Limits of one trace, following Rotenberg et al. [44].
const (
	MaxInsts    = 16
	MaxBranches = 3
)

// instSlotBytes approximates the storage cost of one instruction slot in
// the trace storage, used to convert the configured byte capacity into a
// trace budget.
const instSlotBytes = 8

// trace records one built trace.
type trace struct {
	startPC  uint64
	insts    int
	branches int
	lru      uint64
}

// TraceCache stores traces keyed by start PC with LRU replacement under a
// byte-capacity budget. Lookup is "perfect trace prediction": a resident
// trace is always usable.
type TraceCache struct {
	byStart  map[uint64]*trace
	capInsts int
	used     int
	clock    uint64

	Hits   uint64
	Misses uint64
}

// New builds a trace cache with the given storage capacity in bytes
// (Table 4: 1 MB). A zero or negative capacity disables the cache (every
// lookup misses).
func New(capacityBytes int) *TraceCache {
	return &TraceCache{
		byStart:  make(map[uint64]*trace),
		capInsts: capacityBytes / instSlotBytes,
	}
}

// Lookup reports whether a trace starting at pc is resident, and if so how
// many taken branches the front end may fetch through this cycle.
func (tc *TraceCache) Lookup(pc uint64) (branches int, ok bool) {
	t := tc.byStart[pc]
	if t == nil {
		tc.Misses++
		return 0, false
	}
	tc.clock++
	t.lru = tc.clock
	tc.Hits++
	return t.branches, true
}

// Insert records a trace built at commit.
func (tc *TraceCache) Insert(startPC uint64, insts, branches int) {
	if tc.capInsts <= 0 || insts <= 0 {
		return
	}
	if old := tc.byStart[startPC]; old != nil {
		tc.used -= old.insts
		delete(tc.byStart, startPC)
	}
	for tc.used+insts > tc.capInsts && len(tc.byStart) > 0 {
		tc.evictLRU()
	}
	tc.clock++
	tc.byStart[startPC] = &trace{startPC: startPC, insts: insts, branches: branches, lru: tc.clock}
	tc.used += insts
}

func (tc *TraceCache) evictLRU() {
	// lru stamps are unique (the clock ticks on every touch), so the
	// minimum is well defined; the startPC tie-break keeps the choice
	// deterministic even if that ever changes.
	var victim *trace
	for _, t := range tc.byStart { // mmtvet:ok — unique-minimum selection
		if victim == nil || t.lru < victim.lru ||
			(t.lru == victim.lru && t.startPC < victim.startPC) {
			victim = t
		}
	}
	tc.used -= victim.insts
	delete(tc.byStart, victim.startPC)
}

// Len returns the number of resident traces.
func (tc *TraceCache) Len() int { return len(tc.byStart) }

// Builder accumulates the committed instruction stream of one thread into
// traces and inserts them into the shared trace cache. Call Retire for
// every committed instruction in order.
type Builder struct {
	tc       *TraceCache
	startPC  uint64
	insts    int
	branches int
	started  bool
}

// NewBuilder builds a per-thread trace builder feeding tc.
func NewBuilder(tc *TraceCache) *Builder { return &Builder{tc: tc} }

// Retire feeds one committed instruction. taken marks a taken control
// instruction (which ends a basic block inside the trace).
func (b *Builder) Retire(pc uint64, taken bool) {
	if !b.started {
		b.startPC = pc
		b.started = true
	}
	b.insts++
	if taken {
		b.branches++
	}
	if b.insts >= MaxInsts || b.branches >= MaxBranches {
		b.flush()
	}
}

func (b *Builder) flush() {
	if b.started && b.insts > 0 {
		b.tc.Insert(b.startPC, b.insts, b.branches)
	}
	b.started = false
	b.insts = 0
	b.branches = 0
}
