package dse

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"mmt/internal/power"
	"mmt/internal/sim"
)

// StudySchema versions the study artifact; bump on incompatible change.
const StudySchema = 1

// AppResult is one workload's contribution to a point evaluation.
type AppResult struct {
	App          string  `json:"app"`
	IPC          float64 `json:"ipc"`
	EnergyPerJob float64 `json:"energy_per_job"`
	Cycles       uint64  `json:"cycles"`
	Insts        uint64  `json:"insts"`
}

// PointResult is one evaluated (point, rung) pair — or a static reject.
type PointResult struct {
	// ID is the point's canonical identity within the space
	// (Point.ID); Rung the evaluation budget level it ran at.
	ID   string `json:"id"`
	Rung int    `json:"rung"`
	// Config is the exact override evaluated, including the rung's
	// MaxInsts — enough to re-run the point by hand.
	Config sim.ConfigOverride `json:"config"`
	// Rejected marks a point the static filter discarded; Reason says
	// why. Rejected points carry no objectives and cost no budget.
	Rejected bool   `json:"rejected,omitempty"`
	Reason   string `json:"reason,omitempty"`
	// Objectives aggregates across the study's workloads (IPC geomean,
	// energy/job mean).
	Objectives Objectives  `json:"objectives"`
	PerApp     []AppResult `json:"per_app,omitempty"`
	// Energy is the aggregated per-structure breakdown, in the canonical
	// name-sorted component form.
	Energy []power.Component `json:"energy,omitempty"`
}

// BudgetReport accounts for how the evaluation budget was spent.
type BudgetReport struct {
	// Limit is the -budget cap on (point, rung) evaluations (0 = none).
	Limit int `json:"limit"`
	// Evaluations is how many (point, rung) pairs were simulated —
	// including ones reused from a resumed study, so a resumed artifact
	// accounts identically to a fresh run.
	Evaluations int `json:"evaluations"`
	// Simulations = evaluations × workloads (individual simulator runs).
	Simulations int `json:"simulations"`
	// CommittedInsts sums committed instructions over all simulations —
	// the study's total simulated work.
	CommittedInsts uint64 `json:"committed_insts"`
	// StaticRejects counts points the filter discarded for free.
	StaticRejects int `json:"static_rejects"`
	// Truncated reports that the budget ran out before the sampler
	// finished (the frontier is over the evaluated subset only).
	Truncated bool `json:"truncated,omitempty"`
}

// Study is the artifact of one exploration: everything needed to
// reproduce, resume, extend or render it. It contains no timestamps, no
// wall-clock data and no host identity, and every collection is in a
// deterministic order — two runs of the same (spec, seed, budget) are
// byte-identical, local or fleet.
type Study struct {
	Schema int `json:"schema"`
	// Space is the spec searched, embedded verbatim.
	Space Spec `json:"space"`
	// Seed drove the sampler.
	Seed uint64 `json:"seed"`
	// Workloads are the applications evaluated (after any -workloads
	// override), in evaluation order.
	Workloads []string `json:"workloads"`
	// Points holds every candidate scanned, in scan order (rung by rung,
	// sampler order within a rung; rejects in place).
	Points []PointResult `json:"points"`
	// Frontier is the Pareto frontier over the highest rung's evaluated
	// points, as sorted point IDs.
	Frontier []string `json:"frontier"`
	// Budget is the spend accounting.
	Budget BudgetReport `json:"budget"`
	// Partial marks a checkpoint of an interrupted study (resumable with
	// -resume); final artifacts have it false.
	Partial bool `json:"partial,omitempty"`
}

// MarshalStudy renders the canonical artifact bytes.
func MarshalStudy(st *Study) ([]byte, error) {
	if err := st.Validate(); err != nil {
		return nil, err
	}
	b, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// UnmarshalStudy decodes and validates artifact bytes. Decoding is
// strict: unknown fields mean the artifact is from a different (newer)
// writer and must not be silently reinterpreted.
func UnmarshalStudy(b []byte) (*Study, error) {
	var st Study
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&st); err != nil {
		return nil, fmt.Errorf("dse: decoding study: %w", err)
	}
	if err := st.Validate(); err != nil {
		return nil, err
	}
	return &st, nil
}

// LoadStudy reads an artifact file.
func LoadStudy(path string) (*Study, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	st, err := UnmarshalStudy(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return st, nil
}

// WriteStudy atomically writes the artifact (tmp + rename), so a crash
// mid-write never leaves a torn file where a resumable checkpoint was.
func WriteStudy(path string, st *Study) error {
	b, err := MarshalStudy(st)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// maxRung returns the highest rung index any point was evaluated at.
func (st *Study) maxRung() int {
	max := 0
	for i := range st.Points {
		if !st.Points[i].Rejected && st.Points[i].Rung > max {
			max = st.Points[i].Rung
		}
	}
	return max
}

// topRungObjectives collects the highest rung's evaluated points.
func (st *Study) topRungObjectives() (ids []string, objs []Objectives) {
	top := st.maxRung()
	for i := range st.Points {
		p := &st.Points[i]
		if !p.Rejected && p.Rung == top {
			ids = append(ids, p.ID)
			objs = append(objs, p.Objectives)
		}
	}
	return ids, objs
}

// computeFrontier returns the sorted frontier IDs over the top rung.
func (st *Study) computeFrontier() []string {
	ids, objs := st.topRungObjectives()
	front := []string{}
	for _, i := range Frontier(objs) {
		front = append(front, ids[i])
	}
	sort.Strings(front)
	return front
}

// Validate checks internal consistency; in particular the recorded
// frontier must equal the frontier recomputed from the recorded points,
// so a hand-edited or corrupted artifact cannot claim a wrong optimum.
func (st *Study) Validate() error {
	if st.Schema != StudySchema {
		return fmt.Errorf("dse: study schema %d, this binary speaks %d", st.Schema, StudySchema)
	}
	if err := st.Space.Validate(); err != nil {
		return err
	}
	if len(st.Workloads) == 0 {
		return fmt.Errorf("dse: study has no workloads")
	}
	seen := map[string]bool{}
	for i := range st.Points {
		p := &st.Points[i]
		key := fmt.Sprintf("%s@%d", p.ID, p.Rung)
		if seen[key] {
			return fmt.Errorf("dse: study evaluates %s twice", key)
		}
		seen[key] = true
		if p.Rejected && p.Reason == "" {
			return fmt.Errorf("dse: rejected point %s has no reason", p.ID)
		}
	}
	want := st.computeFrontier()
	if len(want) != len(st.Frontier) {
		return fmt.Errorf("dse: study frontier has %d points, recomputation finds %d",
			len(st.Frontier), len(want))
	}
	for i := range want {
		if st.Frontier[i] != want[i] {
			return fmt.Errorf("dse: study frontier disagrees with its points at %q vs %q",
				st.Frontier[i], want[i])
		}
	}
	return nil
}

// resultByKey indexes a study's results by "id@rung" for resume reuse.
func (st *Study) resultByKey() map[string]*PointResult {
	m := make(map[string]*PointResult, len(st.Points))
	for i := range st.Points {
		p := &st.Points[i]
		m[fmt.Sprintf("%s@%d", p.ID, p.Rung)] = p
	}
	return m
}

// WriteFrontier renders the frontier table for terminals: each member's
// configuration and objectives, IPC-descending, with the paper's Table 4
// design point marked when present.
func (st *Study) WriteFrontier(w io.Writer) {
	paper := st.Space.PaperPointID()
	onFront := map[string]bool{}
	for _, id := range st.Frontier {
		onFront[id] = true
	}
	type row struct {
		id  string
		obj Objectives
	}
	var rows []row
	top := st.maxRung()
	for i := range st.Points {
		p := &st.Points[i]
		if p.Rung == top && onFront[p.ID] {
			rows = append(rows, row{p.ID, p.Objectives})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].obj.IPC != rows[j].obj.IPC {
			return rows[i].obj.IPC > rows[j].obj.IPC
		}
		return rows[i].id < rows[j].id
	})
	fmt.Fprintf(w, "study %s: %d points evaluated, %d rejected statically, frontier %d\n",
		st.Space.Name, st.Budget.Evaluations, st.Budget.StaticRejects, len(st.Frontier))
	if st.Budget.Truncated {
		fmt.Fprintf(w, "  (budget of %d exhausted before the sampler finished)\n", st.Budget.Limit)
	}
	fmt.Fprintf(w, "%-60s %8s %14s\n", "configuration", "IPC", "energy/job pJ")
	for _, r := range rows {
		mark := " "
		if r.id == paper {
			mark = "*"
		}
		fmt.Fprintf(w, "%s %-58s %8.3f %14.1f\n", mark, r.id, r.obj.IPC, r.obj.EnergyPerJob)
	}
	if paper != "" {
		if onFront[paper] {
			fmt.Fprintf(w, "* paper design point (Table 4) — on the frontier\n")
		} else {
			fmt.Fprintf(w, "note: paper design point %s is NOT on the frontier\n", paper)
		}
	}
}
