package dse

import "sort"

// Objectives is one evaluated point's position in the two-objective
// plane the explorer optimizes: throughput up, energy per unit of work
// down — the axes of the paper's Fig. 5/6 trade-off.
type Objectives struct {
	// IPC is the geometric-mean aggregate IPC across the study's
	// workloads (maximized).
	IPC float64 `json:"ipc"`
	// EnergyPerJob is the mean energy per committed per-thread
	// instruction in pJ (minimized).
	EnergyPerJob float64 `json:"energy_per_job"`
}

// Dominates reports whether a is at least as good as b in both
// objectives and strictly better in at least one.
func Dominates(a, b Objectives) bool {
	if a.IPC < b.IPC || a.EnergyPerJob > b.EnergyPerJob {
		return false
	}
	return a.IPC > b.IPC || a.EnergyPerJob < b.EnergyPerJob
}

// Frontier returns the indices of the non-dominated points, ascending.
// Duplicate objective vectors are all kept (neither strictly dominates
// the other), so ties never silently drop a configuration.
func Frontier(objs []Objectives) []int {
	var out []int
	for i, a := range objs {
		dominated := false
		for j, b := range objs {
			if i != j && Dominates(b, a) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out
}

// paretoRanks peels successive frontiers: rank 0 is the frontier of the
// whole set, rank 1 the frontier of the remainder, and so on. Successive
// halving promotes by ascending rank.
func paretoRanks(objs []Objectives) []int {
	ranks := make([]int, len(objs))
	for i := range ranks {
		ranks[i] = -1
	}
	remaining := len(objs)
	for rank := 0; remaining > 0; rank++ {
		// Frontier of the not-yet-ranked subset.
		var idx []int
		for i := range objs {
			if ranks[i] == -1 {
				idx = append(idx, i)
			}
		}
		sub := make([]Objectives, len(idx))
		for k, i := range idx {
			sub[k] = objs[i]
		}
		for _, k := range Frontier(sub) {
			ranks[idx[k]] = rank
			remaining--
		}
	}
	return ranks
}

// promote orders cohort members for halving promotion: ascending Pareto
// rank, then IPC descending, energy ascending, and finally the point ID
// (every tie-break deterministic). ids and objs are parallel.
func promote(ids []string, objs []Objectives) []int {
	ranks := paretoRanks(objs)
	order := make([]int, len(ids))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		i, j := order[x], order[y]
		if ranks[i] != ranks[j] {
			return ranks[i] < ranks[j]
		}
		if objs[i].IPC != objs[j].IPC {
			return objs[i].IPC > objs[j].IPC
		}
		if objs[i].EnergyPerJob != objs[j].EnergyPerJob {
			return objs[i].EnergyPerJob < objs[j].EnergyPerJob
		}
		return ids[i] < ids[j]
	})
	return order
}
