package dse

// Sampling must be deterministic from (spec, seed) alone: the same study
// command produces the same candidate sequence on every machine, which is
// what makes study artifacts byte-identical and resume sound. math/rand
// is deliberately avoided (its stream is not part of Go's compatibility
// promise and the determinism linter bans it in the simulation closure);
// a splitmix64 generator is tiny, fast and fixed forever.

// splitmix64 is a deterministic 64-bit PRNG (Steele et al., "Fast
// splittable pseudorandom number generators", OOPSLA 2014).
type splitmix64 struct{ state uint64 }

func newSplitmix64(seed uint64) *splitmix64 { return &splitmix64{state: seed} }

func (s *splitmix64) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform value in [0, n) by rejection (no modulo bias).
func (s *splitmix64) intn(n int) int {
	if n <= 1 {
		return 0
	}
	max := uint64(n)
	limit := (^uint64(0) / max) * max
	for {
		v := s.next()
		if v < limit {
			return int(v % max)
		}
	}
}

// gridOrder enumerates all n points in flat-index order (the last
// dimension sweeps fastest; see Spec.PointAt).
func gridOrder(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// randomOrder is a seeded Fisher–Yates shuffle of the grid: the same
// (n, seed) always yields the same permutation.
func randomOrder(n int, seed uint64) []int {
	out := gridOrder(n)
	rng := newSplitmix64(seed)
	for i := n - 1; i > 0; i-- {
		j := rng.intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// sampleOrder returns the candidate scan order for the spec's sampler.
// Grid scans in flat-index order; random and halving scan a seeded
// shuffle (halving's first rung is its sampling stage — promotion order
// is then decided by results, not by the shuffle).
func sampleOrder(s *Spec, seed uint64) []int {
	switch s.SamplerName() {
	case "grid":
		return gridOrder(s.Size())
	default: // random, halving
		return randomOrder(s.Size(), seed)
	}
}
