package dse

import (
	"fmt"

	"mmt/internal/asm"
	"mmt/internal/sim"
	"mmt/internal/static"
	"mmt/internal/workloads"
)

// StaticFilter is the cheap first evaluation stage: before spending a
// simulation on a candidate, it checks the candidate's FHB against the
// workloads' statically predicted reconvergence spans (internal/static).
// The FHB holds fetched blocks for the trailing thread to replay; a
// diverged region whose span exceeds what the FHB can buffer forces a
// refetch, so a configuration whose window covers too few of the
// predicted spans cannot profit from MMT's sharing and is rejected
// without touching the simulator. Analysis runs once per workload and is
// shared by every candidate, so filtering a point costs a few integer
// comparisons.
type StaticFilter struct {
	min   float64
	spans []int64 // |reconvergence span| of every entry across the workloads
}

// NewStaticFilter statically analyzes the named workloads and returns a
// filter rejecting points below the given coverage.
func NewStaticFilter(apps []string, minCoverage float64) (*StaticFilter, error) {
	f := &StaticFilter{min: minCoverage}
	for _, name := range apps {
		a, ok := workloads.ByName(name)
		if !ok {
			return nil, fmt.Errorf("dse: unknown workload %q", name)
		}
		p, err := asm.Assemble(a.Name, a.Source)
		if err != nil {
			return nil, fmt.Errorf("dse: assembling %s: %w", a.Name, err)
		}
		for _, e := range static.Analyze(p).BuildReport().Reconv {
			span := e.Span
			if span < 0 {
				span = -span
			}
			f.spans = append(f.spans, span)
		}
	}
	return f, nil
}

// Coverage returns the fraction of reconvergence entries whose span fits
// in the candidate's FHB: a span of n instructions occupies
// ceil(n/fetchWidth) fetch-block entries. Workloads without branches
// contribute nothing; a span-free program set covers trivially (1.0).
func (f *StaticFilter) Coverage(o *sim.ConfigOverride) float64 {
	if len(f.spans) == 0 {
		return 1.0
	}
	fhb, width := o.FHBSize, o.FetchWidth
	if fhb == 0 {
		fhb = 32 // Table 4 default when the dimension is not swept
	}
	if width == 0 {
		width = 8
	}
	covered := 0
	for _, span := range f.spans {
		blocks := (span + int64(width) - 1) / int64(width)
		if blocks <= int64(fhb) {
			covered++
		}
	}
	return float64(covered) / float64(len(f.spans))
}

// Reject returns a non-empty reason when the point fails the filter.
func (f *StaticFilter) Reject(o *sim.ConfigOverride) string {
	if f == nil || f.min <= 0 {
		return ""
	}
	if cov := f.Coverage(o); cov < f.min {
		return fmt.Sprintf("static reconvergence coverage %.3f below %.3f", cov, f.min)
	}
	return ""
}
