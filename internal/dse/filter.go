package dse

import (
	"fmt"
	"sort"

	"mmt/internal/sim"
	"mmt/internal/static/absint"
	"mmt/internal/workloads"
)

// StaticFilter is the cheap first evaluation stage: before spending a
// simulation on a candidate, it checks the candidate's FHB against the
// workloads' statically predicted reconvergence spans and — when ranking
// is enabled — scores the candidate with the abstract-interpretation
// cost model (absint.Estimate), so successive-halving rung 0 starts from
// the statically best points. Analysis runs once per workload and is
// shared by every candidate; per-app results are held sorted by workload
// name, so every derived number and reason string is deterministic
// regardless of construction order.
type StaticFilter struct {
	min  float64
	rank bool
	// apps is sorted by name; spans and estimates aggregate in that
	// order, so float accumulation is reproducible.
	apps []appStatics
}

type appStatics struct {
	name string
	// spans are the |reconvergence span| of the app's report entries.
	spans []int64
	est   *absint.Estimate
}

// NewStaticFilter statically analyzes the named workloads and returns a
// filter rejecting points below minCoverage; with rank set it also
// prepares the cost-model estimates behind Score.
func NewStaticFilter(apps []string, minCoverage float64, rank bool) (*StaticFilter, error) {
	f := &StaticFilter{min: minCoverage, rank: rank}
	names := append([]string(nil), apps...)
	sort.Strings(names)
	for _, name := range names {
		a, ok := workloads.ByName(name)
		if !ok {
			return nil, fmt.Errorf("dse: unknown workload %q", name)
		}
		r, err := absint.AnalyzeApp(a, 2)
		if err != nil {
			return nil, fmt.Errorf("dse: analyzing %s: %w", a.Name, err)
		}
		as := appStatics{name: name}
		for _, e := range r.A.BuildReport().Reconv {
			span := e.Span
			if span < 0 {
				span = -span
			}
			as.spans = append(as.spans, span)
		}
		if rank {
			as.est = absint.EstimateOf(r)
		}
		f.apps = append(f.apps, as)
	}
	return f, nil
}

// Ranking reports whether the filter carries cost-model estimates.
func (f *StaticFilter) Ranking() bool { return f != nil && f.rank }

// Coverage returns the fraction of reconvergence entries whose span fits
// in the candidate's FHB: a span of n instructions occupies
// ceil(n/fetchWidth) fetch-block entries. Workloads without branches
// contribute nothing; a span-free program set covers trivially (1.0).
func (f *StaticFilter) Coverage(o *sim.ConfigOverride) float64 {
	total := 0
	for i := range f.apps {
		total += len(f.apps[i].spans)
	}
	if total == 0 {
		return 1.0
	}
	fhb, width := o.FHBSize, o.FetchWidth
	if fhb == 0 {
		fhb = 32 // Table 4 default when the dimension is not swept
	}
	if width == 0 {
		width = 8
	}
	covered := 0
	for i := range f.apps {
		for _, span := range f.apps[i].spans {
			blocks := (span + int64(width) - 1) / int64(width)
			if blocks <= int64(fhb) {
				covered++
			}
		}
	}
	return float64(covered) / float64(total)
}

// Reject returns a non-empty reason when the point fails the filter.
func (f *StaticFilter) Reject(o *sim.ConfigOverride) string {
	if f == nil || f.min <= 0 {
		return ""
	}
	if cov := f.Coverage(o); cov < f.min {
		return fmt.Sprintf("static reconvergence coverage %.3f below %.3f", cov, f.min)
	}
	return ""
}

// Score ranks a candidate: the mean predicted throughput score across
// the workloads minus a small energy-rank penalty, higher is better.
// Scores only order candidates within one study — they are not IPC.
func (f *StaticFilter) Score(o *sim.ConfigOverride) float64 {
	if f == nil || !f.rank || len(f.apps) == 0 {
		return 0
	}
	var tp, en float64
	for i := range f.apps {
		t, e := f.apps[i].est.Score(o.FHBSize, o.FetchWidth, o.LVIPSize)
		tp += t
		en += e
	}
	n := float64(len(f.apps))
	// The throughput term dominates; the energy term only breaks ties
	// between configurations the model predicts equal merging for.
	return tp/n - 0.01*en/n
}
