// Package dse is the automated design-space explorer: the brain on top of
// the execution muscle the repo already has. A declarative Spec names the
// core configuration dimensions to search (FHB size, fetch width, LVIP
// size, queue depths, sync policy, cache geometry — every knob
// sim.ConfigOverride can express), deterministic seeded samplers (grid,
// random, successive halving) enumerate candidate points, a cheap static
// first-stage filter built on internal/static's reconvergence predictions
// discards points whose FHB window cannot capture the workloads' remerge
// spans, and a two-objective evaluator (IPC up, energy per job down, from
// internal/power) maintains the Pareto frontier. Evaluation runs through a
// pluggable Backend — the local runner.Pool or a live mmtserved/mmtrouter
// fleet — inheriting content-addressed dedup, caching, retries and tracing
// for free. The product is a canonical, byte-stable study artifact
// (internal/dse/study.go) that cmd/mmtdse writes, resumes and renders.
package dse

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"mmt/internal/sim"
	"mmt/internal/workloads"
)

// knob maps one dimension name onto a ConfigOverride field. paper is the
// Table 4 value of the knob — the paper's design point in that dimension.
type knob struct {
	set   func(*sim.ConfigOverride, int)
	setS  func(*sim.ConfigOverride, string)
	paper string
}

// knobs is the dimension registry: every searchable knob, keyed by the
// wire name it shares with sim.ConfigOverride. Values are validated by
// building an override and running its Validate, so a space can never
// express a point a submission could not.
var knobs = map[string]knob{
	"fhb_size":        {set: func(o *sim.ConfigOverride, v int) { o.FHBSize = v }, paper: "32"},
	"fetch_width":     {set: func(o *sim.ConfigOverride, v int) { o.FetchWidth = v }, paper: "8"},
	"ls_ports":        {set: func(o *sim.ConfigOverride, v int) { o.LSPorts = v }, paper: "2"},
	"lvip_size":       {set: func(o *sim.ConfigOverride, v int) { o.LVIPSize = v }, paper: "4096"},
	"fetch_queue":     {set: func(o *sim.ConfigOverride, v int) { o.FetchQueue = v }, paper: "32"},
	"iq_size":         {set: func(o *sim.ConfigOverride, v int) { o.IQSize = v }, paper: "64"},
	"rob_size":        {set: func(o *sim.ConfigOverride, v int) { o.ROBSize = v }, paper: "256"},
	"lsq_size":        {set: func(o *sim.ConfigOverride, v int) { o.LSQSize = v }, paper: "64"},
	"reg_merge_ports": {set: func(o *sim.ConfigOverride, v int) { o.RegMergePorts = v }, paper: "2"},
	"sync_policy":     {setS: func(o *sim.ConfigOverride, v string) { o.SyncPolicy = v }, paper: "fhb"},
	"l1_kb":           {set: func(o *sim.ConfigOverride, v int) { o.L1KB = v }, paper: "64"},
	"l2_kb":           {set: func(o *sim.ConfigOverride, v int) { o.L2KB = v }, paper: "4096"},
}

// KnobNames lists the searchable dimensions, sorted.
func KnobNames() []string {
	out := make([]string, 0, len(knobs))
	for name := range knobs { // mmtvet:ok — sorted immediately below
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Dimension is one axis of the search space: a knob name plus the
// candidate values to try. Integer knobs list Values, enum knobs
// (sync_policy) list Strings; exactly one must be set.
type Dimension struct {
	Name    string   `json:"name"`
	Values  []int    `json:"values,omitempty"`
	Strings []string `json:"strings,omitempty"`
}

// n returns the dimension's cardinality.
func (d *Dimension) n() int {
	if len(d.Values) > 0 {
		return len(d.Values)
	}
	return len(d.Strings)
}

// render returns candidate i as its canonical string form.
func (d *Dimension) render(i int) string {
	if len(d.Values) > 0 {
		return strconv.Itoa(d.Values[i])
	}
	return d.Strings[i]
}

// FilterSpec configures the static first-stage filter (see filter.go).
type FilterSpec struct {
	// MinReconvCoverage rejects a point (without simulating it) when its
	// FHB window covers less than this fraction of the statically
	// predicted reconvergence spans across the selected workloads.
	// 0 disables the filter.
	MinReconvCoverage float64 `json:"min_reconv_coverage"`
	// Rank orders the rung-0 cohort by the abstract-interpretation cost
	// model (absint.Estimate), statically best first. Ranking never
	// changes which points are evaluated under a full budget — only the
	// order they are attempted in — so frontiers are unchanged; under a
	// truncating budget the surviving prefix is the statically best one.
	Rank bool `json:"rank,omitempty"`
}

// Spec declares one search space: the machine presets held fixed, the
// dimensions swept, the sampler, and the per-point simulation budget. It
// is embedded verbatim in the study artifact, so a study is reproducible
// from its own bytes.
type Spec struct {
	Name string `json:"name"`
	// Preset is the Table 5 design point every candidate starts from
	// (default MMT-FXR); Threads the hardware thread count (default 2).
	Preset  sim.Preset `json:"preset,omitempty"`
	Threads int        `json:"threads,omitempty"`
	// Sampler selects the search strategy: "grid" (exhaustive, in
	// lexicographic dimension order), "random" (seeded shuffle of the
	// grid) or "halving" (successive halving over Rungs). Default grid.
	Sampler string `json:"sampler,omitempty"`
	// MaxInsts bounds per-thread committed instructions for every
	// evaluation of a single-rung sampler (0 = run workloads to
	// completion).
	MaxInsts uint64 `json:"max_insts,omitempty"`
	// Rungs are the ascending MaxInsts budgets of successive halving:
	// every candidate runs at Rungs[0]; survivors are promoted to longer
	// budgets. Required for (and only meaningful with) the halving
	// sampler.
	Rungs []uint64 `json:"rungs,omitempty"`
	// Eta is the halving promotion divisor: the top 1/Eta of a rung's
	// cohort (by Pareto rank) advances. Default 2.
	Eta int `json:"eta,omitempty"`
	// Workloads restricts the evaluation to these applications (default:
	// the paper's sixteen kernels). The -workloads flag overrides it.
	Workloads []string `json:"workloads,omitempty"`
	// Dimensions are the swept axes.
	Dimensions []Dimension `json:"dimensions"`
	// Filter enables the static first-stage filter.
	Filter *FilterSpec `json:"filter,omitempty"`
}

// Validate checks the spec: known sampler and dimensions, in-range values
// (via the override codec, so space files and job submissions share one
// notion of validity), ascending rungs.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("dse: space has no name")
	}
	switch s.Sampler {
	case "", "grid", "random", "halving":
	default:
		return fmt.Errorf("dse: space %s: unknown sampler %q (want grid, random or halving)", s.Name, s.Sampler)
	}
	if s.Sampler == "halving" && len(s.Rungs) == 0 {
		return fmt.Errorf("dse: space %s: halving sampler needs rungs", s.Name)
	}
	if s.Sampler != "halving" && len(s.Rungs) > 0 {
		return fmt.Errorf("dse: space %s: rungs are only meaningful with the halving sampler", s.Name)
	}
	for i := 1; i < len(s.Rungs); i++ {
		if s.Rungs[i] <= s.Rungs[i-1] {
			return fmt.Errorf("dse: space %s: rungs must strictly ascend (rung %d: %d after %d)",
				s.Name, i, s.Rungs[i], s.Rungs[i-1])
		}
	}
	if s.Eta < 0 || s.Eta == 1 {
		return fmt.Errorf("dse: space %s: eta must be >= 2", s.Name)
	}
	if len(s.Dimensions) == 0 {
		return fmt.Errorf("dse: space %s: no dimensions", s.Name)
	}
	seen := map[string]bool{}
	for di := range s.Dimensions {
		d := &s.Dimensions[di]
		k, ok := knobs[d.Name]
		if !ok {
			return fmt.Errorf("dse: space %s: unknown dimension %q (known: %s)",
				s.Name, d.Name, strings.Join(KnobNames(), ", "))
		}
		if seen[d.Name] {
			return fmt.Errorf("dse: space %s: duplicate dimension %q", s.Name, d.Name)
		}
		seen[d.Name] = true
		if (len(d.Values) > 0) == (len(d.Strings) > 0) {
			return fmt.Errorf("dse: space %s: dimension %q must set exactly one of values or strings", s.Name, d.Name)
		}
		if len(d.Values) > 0 && k.set == nil {
			return fmt.Errorf("dse: space %s: dimension %q takes strings, not values", s.Name, d.Name)
		}
		if len(d.Strings) > 0 && k.setS == nil {
			return fmt.Errorf("dse: space %s: dimension %q takes values, not strings", s.Name, d.Name)
		}
		// Every candidate value must be expressible as a valid override.
		// Zero (and the empty string) mean "keep the preset value" in the
		// override codec, so they are not legal sweep values either.
		for i := 0; i < d.n(); i++ {
			if d.render(i) == "0" || d.render(i) == "" {
				return fmt.Errorf("dse: space %s: dimension %q value %q is not a sweepable value",
					s.Name, d.Name, d.render(i))
			}
			var o sim.ConfigOverride
			d.apply(&o, i)
			if err := o.Validate(); err != nil {
				return fmt.Errorf("dse: space %s: dimension %q value %s: %w", s.Name, d.Name, d.render(i), err)
			}
		}
	}
	for _, name := range s.Workloads {
		if _, ok := workloads.ByName(name); !ok {
			return fmt.Errorf("dse: space %s: unknown workload %q", s.Name, name)
		}
	}
	if s.Filter != nil && (s.Filter.MinReconvCoverage < 0 || s.Filter.MinReconvCoverage > 1) {
		return fmt.Errorf("dse: space %s: min_reconv_coverage %v outside [0,1]", s.Name, s.Filter.MinReconvCoverage)
	}
	// The preset and thread count must resolve (reuse the task machinery
	// so an invalid combination fails at spec-load time).
	probe := sim.TaskSpec{App: workloads.Names()[0], Preset: s.Preset, Threads: s.Threads}
	if _, err := probe.Task(); err != nil {
		return fmt.Errorf("dse: space %s: %w", s.Name, err)
	}
	return nil
}

// apply sets candidate i of the dimension on an override.
func (d *Dimension) apply(o *sim.ConfigOverride, i int) {
	k := knobs[d.Name]
	if len(d.Values) > 0 {
		k.set(o, d.Values[i])
		return
	}
	k.setS(o, d.Strings[i])
}

// Size returns the number of points in the space (the product of the
// dimension cardinalities).
func (s *Spec) Size() int {
	n := 1
	for i := range s.Dimensions {
		n *= s.Dimensions[i].n()
	}
	return n
}

// SamplerName returns the effective sampler ("grid" when unset).
func (s *Spec) SamplerName() string {
	if s.Sampler == "" {
		return "grid"
	}
	return s.Sampler
}

// rungs returns the evaluation budgets: the spec's halving rungs, or the
// single MaxInsts rung.
func (s *Spec) rungs() []uint64 {
	if len(s.Rungs) > 0 {
		return s.Rungs
	}
	return []uint64{s.MaxInsts}
}

// eta returns the effective promotion divisor.
func (s *Spec) eta() int {
	if s.Eta == 0 {
		return 2
	}
	return s.Eta
}

// Point is one candidate configuration: an assignment of every dimension.
type Point struct {
	// ID is the canonical identity: "name=value" pairs in dimension
	// order. It keys resume reuse and the frontier.
	ID string
	// Override is the assignment as a config override (without the
	// rung's MaxInsts budget, which the engine adds per evaluation).
	Override sim.ConfigOverride
}

// PointAt decodes flat index idx (0 <= idx < Size) into a point. The
// first dimension is the most significant digit, so grid order sweeps the
// last dimension fastest.
func (s *Spec) PointAt(idx int) Point {
	var o sim.ConfigOverride
	parts := make([]string, len(s.Dimensions))
	rem := idx
	for di := len(s.Dimensions) - 1; di >= 0; di-- {
		d := &s.Dimensions[di]
		vi := rem % d.n()
		rem /= d.n()
		d.apply(&o, vi)
		parts[di] = d.Name + "=" + d.render(vi)
	}
	return Point{ID: strings.Join(parts, ","), Override: o}
}

// PaperPointID returns the ID of the paper's Table 4 design point within
// this space — the assignment picking every dimension's Table 4 value —
// or "" when some dimension does not offer that value (the space cannot
// express the paper's machine).
func (s *Spec) PaperPointID() string {
	parts := make([]string, len(s.Dimensions))
	for di := range s.Dimensions {
		d := &s.Dimensions[di]
		found := false
		for i := 0; i < d.n(); i++ {
			if d.render(i) == knobs[d.Name].paper {
				parts[di] = d.Name + "=" + knobs[d.Name].paper
				found = true
				break
			}
		}
		if !found {
			return ""
		}
	}
	return strings.Join(parts, ",")
}

// Builtins lists the compiled-in space names.
func Builtins() []string { return []string{"default", "smoke", "halving"} }

// Builtin returns a compiled-in space by name.
func Builtin(name string) (*Spec, bool) {
	switch name {
	case "default":
		// The Fig. 7-inspired sweep around the paper's design point: every
		// dimension includes its Table 4 value, so the study rediscovers
		// the paper's machine as the frontier's throughput corner — and
		// cheaper frontier members beside it. FHB size is deliberately NOT
		// swept here (the halving builtin sweeps it): on the sixteen short
		// kernels a 16-entry FHB Pareto-dominates the paper's 32 entries,
		// which is a finding about the kernels, not a default to bury it in.
		return &Spec{
			Name:     "default",
			Sampler:  "grid",
			MaxInsts: 200_000,
			Dimensions: []Dimension{
				{Name: "fetch_width", Values: []int{4, 8}},
				{Name: "lvip_size", Values: []int{1024, 4096}},
				{Name: "sync_policy", Strings: []string{"hints", "fhb"}},
				{Name: "iq_size", Values: []int{32, 64}},
			},
			Filter: &FilterSpec{MinReconvCoverage: 0.25},
		}, true
	case "smoke":
		// Tiny, fast, deterministic: CI's byte-identity check and quick
		// local experiments.
		return &Spec{
			Name:     "smoke",
			Sampler:  "grid",
			MaxInsts: 20_000,
			Dimensions: []Dimension{
				{Name: "fhb_size", Values: []int{8, 32}},
				{Name: "fetch_width", Values: []int{4, 8}},
			},
		}, true
	case "halving":
		// A wider space only successive halving can afford: cheap first
		// rung over everything, survivors promoted to 9x the budget.
		return &Spec{
			Name:    "halving",
			Sampler: "halving",
			Rungs:   []uint64{20_000, 60_000, 180_000},
			Eta:     3,
			Dimensions: []Dimension{
				{Name: "fhb_size", Values: []int{4, 8, 16, 32, 64}},
				{Name: "fetch_width", Values: []int{2, 4, 8}},
				{Name: "lvip_size", Values: []int{256, 1024, 4096}},
				{Name: "rob_size", Values: []int{128, 256}},
			},
			Filter: &FilterSpec{MinReconvCoverage: 0.25, Rank: true},
		}, true
	}
	return nil, false
}

// LoadSpec resolves -space: a builtin name, or a JSON file. File specs
// decode strictly — unknown fields are errors, like every other
// user-authored input in the system.
func LoadSpec(nameOrPath string) (*Spec, error) {
	if s, ok := Builtin(nameOrPath); ok {
		return s, s.Validate()
	}
	b, err := os.ReadFile(nameOrPath)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("dse: %q is neither a builtin space (%s) nor a readable file",
				nameOrPath, strings.Join(Builtins(), ", "))
		}
		return nil, err
	}
	s, err := ParseSpec(b)
	if err != nil {
		return nil, fmt.Errorf("dse: %s: %w", nameOrPath, err)
	}
	return s, nil
}

// ParseSpec decodes and validates a JSON space spec.
func ParseSpec(b []byte) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(strings.NewReader(string(b)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("decoding space spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}
