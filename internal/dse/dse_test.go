package dse

import (
	"context"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"mmt/internal/core"
	"mmt/internal/obs"
	"mmt/internal/runner"
	"mmt/internal/serve"
	"mmt/internal/sim"
)

// --- Pareto properties -------------------------------------------------

// TestDominatesAntisymmetric: dominance is a strict partial order — a
// point never dominates itself, and two points never dominate each other.
func TestDominatesAntisymmetric(t *testing.T) {
	pts := []Objectives{
		{IPC: 1, EnergyPerJob: 100},
		{IPC: 2, EnergyPerJob: 100},
		{IPC: 1, EnergyPerJob: 50},
		{IPC: 2, EnergyPerJob: 50},
		{IPC: 1, EnergyPerJob: 100}, // duplicate of [0]
	}
	for i, a := range pts {
		if Dominates(a, a) {
			t.Errorf("point %d dominates itself", i)
		}
		for j, b := range pts {
			if Dominates(a, b) && Dominates(b, a) {
				t.Errorf("mutual domination between %d and %d", i, j)
			}
		}
	}
	if !Dominates(pts[3], pts[0]) {
		t.Error("strictly better point does not dominate")
	}
	if Dominates(pts[1], pts[2]) || Dominates(pts[2], pts[1]) {
		t.Error("incomparable points dominate")
	}
	if Dominates(pts[0], pts[4]) || Dominates(pts[4], pts[0]) {
		t.Error("equal points dominate")
	}
}

// TestFrontierMinimal: the frontier holds exactly the non-dominated
// points — no member dominates another, and every excluded point is
// dominated by some member.
func TestFrontierMinimal(t *testing.T) {
	// A deterministic scatter (from the study PRNG, fixed seed).
	rng := newSplitmix64(7)
	objs := make([]Objectives, 40)
	for i := range objs {
		objs[i] = Objectives{
			IPC:          float64(rng.intn(20)) / 4,
			EnergyPerJob: float64(50 + rng.intn(100)),
		}
	}
	front := Frontier(objs)
	if len(front) == 0 {
		t.Fatal("empty frontier of a non-empty set")
	}
	on := map[int]bool{}
	for _, i := range front {
		on[i] = true
	}
	for _, i := range front {
		for _, j := range front {
			if i != j && Dominates(objs[i], objs[j]) {
				t.Errorf("frontier member %d dominates member %d", i, j)
			}
		}
	}
	for i := range objs {
		if on[i] {
			continue
		}
		dominated := false
		for _, j := range front {
			if Dominates(objs[j], objs[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			t.Errorf("excluded point %d is not dominated by any frontier member", i)
		}
	}
}

// --- Sampler determinism ----------------------------------------------

func TestSamplerDeterministic(t *testing.T) {
	spec, ok := Builtin("default")
	if !ok {
		t.Fatal("no default space")
	}
	for _, sampler := range []string{"grid", "random"} {
		spec.Sampler = sampler
		a := sampleOrder(spec, 42)
		b := sampleOrder(spec, 42)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed produced different orders", sampler)
		}
		if len(a) != spec.Size() {
			t.Errorf("%s: order covers %d of %d points", sampler, len(a), spec.Size())
		}
		seen := map[int]bool{}
		for _, i := range a {
			if seen[i] || i < 0 || i >= spec.Size() {
				t.Fatalf("%s: order is not a permutation", sampler)
			}
			seen[i] = true
		}
	}
	spec.Sampler = "random"
	if reflect.DeepEqual(sampleOrder(spec, 1), sampleOrder(spec, 2)) {
		t.Error("random order ignores the seed")
	}
}

// TestPointAtRoundTrip: flat indices decode to distinct IDs and valid
// overrides, and the paper point exists in the default space.
func TestPointAtRoundTrip(t *testing.T) {
	spec, _ := Builtin("default")
	ids := map[string]bool{}
	for i := 0; i < spec.Size(); i++ {
		p := spec.PointAt(i)
		if ids[p.ID] {
			t.Fatalf("duplicate point ID %s", p.ID)
		}
		ids[p.ID] = true
		if err := p.Override.Validate(); err != nil {
			t.Fatalf("%s: invalid override: %v", p.ID, err)
		}
	}
	paper := spec.PaperPointID()
	if paper == "" {
		t.Fatal("default space cannot express the paper design point")
	}
	if !ids[paper] {
		t.Fatalf("paper point %s not among the space's points", paper)
	}
}

// --- Spec validation ---------------------------------------------------

func TestSpecValidation(t *testing.T) {
	bad := []string{
		`{"name":"x","dimensions":[{"name":"warp_size","values":[32]}]}`,         // unknown knob
		`{"name":"x","dimensions":[{"name":"fhb_size","values":[0]}]}`,           // out of range
		`{"name":"x","dimensions":[{"name":"fhb_size","strings":["big"]}]}`,      // wrong kind
		`{"name":"x","dimensions":[{"name":"sync_policy","values":[1]}]}`,        // wrong kind
		`{"name":"x","dimensions":[{"name":"fhb_size","values":[8]}],"bogus":1}`, // unknown field
		`{"name":"x","sampler":"anneal","dimensions":[{"name":"fhb_size","values":[8]}]}`,
		`{"name":"x","sampler":"halving","dimensions":[{"name":"fhb_size","values":[8]}]}`, // no rungs
		`{"name":"x","sampler":"halving","rungs":[100,100],"dimensions":[{"name":"fhb_size","values":[8]}]}`,
		`{"name":"x","workloads":["no-such-app"],"dimensions":[{"name":"fhb_size","values":[8]}]}`,
		`{"name":"x","dimensions":[{"name":"fhb_size","values":[8]},{"name":"fhb_size","values":[16]}]}`,
	}
	for _, c := range bad {
		if _, err := ParseSpec([]byte(c)); err == nil {
			t.Errorf("accepted invalid spec %s", c)
		}
	}
	for _, name := range Builtins() {
		s, ok := Builtin(name)
		if !ok {
			t.Fatalf("missing builtin %s", name)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("builtin %s invalid: %v", name, err)
		}
	}
}

// --- Static filter -----------------------------------------------------

func TestStaticFilterMonotone(t *testing.T) {
	f, err := NewStaticFilter([]string{"libsvm", "twolf"}, 0.5, false)
	if err != nil {
		t.Fatal(err)
	}
	small := sim.ConfigOverride{FHBSize: 1, FetchWidth: 1}
	big := sim.ConfigOverride{FHBSize: 1024, FetchWidth: 8}
	cs, cb := f.Coverage(&small), f.Coverage(&big)
	if cs > cb {
		t.Errorf("coverage not monotone in FHB capacity: %v > %v", cs, cb)
	}
	if cb != 1.0 {
		t.Errorf("a 1024-entry FHB does not cover every span: %v", cb)
	}
	if cs < 0 || cs > 1 {
		t.Errorf("coverage %v outside [0,1]", cs)
	}
}

// TestStaticFilterOrderInsensitive: the filter holds per-app statics
// sorted by name, so construction order cannot leak into coverage,
// scores, or rejection reasons.
func TestStaticFilterOrderInsensitive(t *testing.T) {
	f1, err := NewStaticFilter([]string{"libsvm", "twolf", "equake"}, 0.5, true)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := NewStaticFilter([]string{"twolf", "equake", "libsvm"}, 0.5, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range []sim.ConfigOverride{
		{FHBSize: 4, FetchWidth: 2},
		{FHBSize: 32, FetchWidth: 8, LVIPSize: 1024},
		{FHBSize: 256, FetchWidth: 8},
	} {
		o := o
		if c1, c2 := f1.Coverage(&o), f2.Coverage(&o); c1 != c2 {
			t.Errorf("coverage depends on construction order: %v vs %v", c1, c2)
		}
		if s1, s2 := f1.Score(&o), f2.Score(&o); s1 != s2 {
			t.Errorf("score depends on construction order: %v vs %v", s1, s2)
		}
		if r1, r2 := f1.Reject(&o), f2.Reject(&o); r1 != r2 {
			t.Errorf("rejection reason depends on construction order: %q vs %q", r1, r2)
		}
	}
}

// rankedSpec is a halving space with enough spread for the ranker to
// reorder rung 0.
func rankedSpec(rank bool) *Spec {
	var filter *FilterSpec
	if rank {
		filter = &FilterSpec{Rank: true}
	}
	return &Spec{
		Name:    "rank-test",
		Sampler: "halving",
		Rungs:   []uint64{1000, 2000},
		Eta:     2,
		Dimensions: []Dimension{
			{Name: "fhb_size", Values: []int{2, 8, 32, 128}},
			{Name: "fetch_width", Values: []int{2, 8}},
		},
		Filter: filter,
	}
}

// TestRankedFrontierIdentity is the acceptance property of the static
// ranker: under a full budget it must produce a byte-identical frontier
// to the unranked run of the same (spec, seed, budget) while evaluating
// exactly as many points — ranking reorders rung 0, it never changes
// what is evaluated or what survives.
func TestRankedFrontierIdentity(t *testing.T) {
	run := func(rank bool) *Study {
		st, err := Search(context.Background(), Options{
			Spec: rankedSpec(rank), Seed: 3, Backend: newCountingBackend(),
			Workloads: []string{"libsvm"}, Concurrency: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	plain, ranked := run(false), run(true)
	if got, want := fmt.Sprint(ranked.Frontier), fmt.Sprint(plain.Frontier); got != want {
		t.Errorf("ranked frontier %s differs from unranked %s", got, want)
	}
	if ranked.Budget.Evaluations != plain.Budget.Evaluations {
		t.Errorf("ranked run evaluated %d points, unranked %d",
			ranked.Budget.Evaluations, plain.Budget.Evaluations)
	}
	// Same evaluated sets per rung, possibly in a different order.
	sets := func(st *Study) map[int][]string {
		m := map[int][]string{}
		for i := range st.Points {
			p := &st.Points[i]
			m[p.Rung] = append(m[p.Rung], p.ID)
		}
		for r := range m {
			sort.Strings(m[r])
		}
		return m
	}
	sp, sr := sets(plain), sets(ranked)
	if len(sp) != len(sr) {
		t.Fatalf("rung counts differ: %d vs %d", len(sp), len(sr))
	}
	for r := range sp {
		if fmt.Sprint(sp[r]) != fmt.Sprint(sr[r]) {
			t.Errorf("rung %d evaluated sets differ:\nunranked %v\nranked   %v", r, sp[r], sr[r])
		}
	}
}

// TestRankedStudyByteIdentity: with the ranker on, repeated runs of the
// same (spec, seed, budget) still produce byte-identical artifacts.
func TestRankedStudyByteIdentity(t *testing.T) {
	run := func() []byte {
		st, err := Search(context.Background(), Options{
			Spec: rankedSpec(true), Seed: 9, Backend: newCountingBackend(),
			Workloads: []string{"libsvm", "twolf"}, Concurrency: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		b, err := MarshalStudy(st)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if b1, b2 := run(), run(); string(b1) != string(b2) {
		t.Error("two ranked runs differ byte for byte")
	}
}

// --- Successive halving budget accounting ------------------------------

// countingBackend fabricates outcomes without simulating, recording how
// many evaluations ran; IPC is derived from the FHB size so promotion is
// deterministic and observable.
type countingBackend struct {
	mu   chan struct{} // 1-token semaphore; avoids importing sync here
	runs []sim.TaskSpec
}

func newCountingBackend() *countingBackend {
	b := &countingBackend{mu: make(chan struct{}, 1)}
	b.mu <- struct{}{}
	return b
}

func (b *countingBackend) Run(_ context.Context, spec sim.TaskSpec) (*sim.Outcome, error) {
	<-b.mu
	b.runs = append(b.runs, spec)
	b.mu <- struct{}{}
	task, err := spec.Task()
	if err != nil {
		return nil, err
	}
	cfg, err := task.ResolvedConfig()
	if err != nil {
		return nil, err
	}
	res := &sim.Result{App: spec.App, Preset: task.Preset, Threads: task.Threads,
		Stats: fabStats(uint64(cfg.FHBSize))}
	return &sim.Outcome{Result: res}, nil
}

func (b *countingBackend) Name() string { return "counting" }

// TestHalvingBudgetAccounting: rung cohort sizes follow ceil(n/eta), the
// budget report tallies every (point,rung) evaluation and simulation, and
// exhausting the budget truncates instead of overrunning.
func TestHalvingBudgetAccounting(t *testing.T) {
	spec := &Spec{
		Name:    "halv-test",
		Sampler: "halving",
		Rungs:   []uint64{1000, 2000, 4000},
		Eta:     2,
		Dimensions: []Dimension{
			{Name: "fhb_size", Values: []int{2, 4, 8, 16, 32, 64, 128, 256}},
		},
	}
	be := newCountingBackend()
	st, err := Search(context.Background(), Options{
		Spec: spec, Seed: 1, Backend: be, Workloads: []string{"libsvm"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 8 points at rung 0, ceil(8/2)=4 at rung 1, ceil(4/2)=2 at rung 2.
	wantEvals := 8 + 4 + 2
	if st.Budget.Evaluations != wantEvals {
		t.Errorf("evaluations = %d, want %d", st.Budget.Evaluations, wantEvals)
	}
	if st.Budget.Simulations != wantEvals {
		t.Errorf("simulations = %d, want %d (one workload)", st.Budget.Simulations, wantEvals)
	}
	if len(be.runs) != wantEvals {
		t.Errorf("backend ran %d times, want %d", len(be.runs), wantEvals)
	}
	if st.Budget.Truncated {
		t.Error("unbounded search reported truncation")
	}
	perRung := map[int]int{}
	for i := range st.Points {
		perRung[st.Points[i].Rung]++
	}
	if perRung[0] != 8 || perRung[1] != 4 || perRung[2] != 2 {
		t.Errorf("rung cohort sizes %v, want 8/4/2", perRung)
	}
	// Promotion kept the highest-IPC (largest FHB in the fabricated
	// model) configurations.
	for i := range st.Points {
		p := &st.Points[i]
		if p.Rung == 2 && p.Config.FHBSize < 128 {
			t.Errorf("rung 2 kept %s over a higher-IPC point", p.ID)
		}
	}

	// A budget smaller than the full schedule truncates cleanly.
	be2 := newCountingBackend()
	st2, err := Search(context.Background(), Options{
		Spec: spec, Seed: 1, Budget: 10, Backend: be2, Workloads: []string{"libsvm"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Budget.Evaluations != 10 || !st2.Budget.Truncated {
		t.Errorf("budget 10: evaluated %d, truncated %v", st2.Budget.Evaluations, st2.Budget.Truncated)
	}
	if len(be2.runs) != 10 {
		t.Errorf("budget 10: backend ran %d times", len(be2.runs))
	}
}

// fabStats fabricates a Stats whose IPC grows with quality.
func fabStats(quality uint64) *core.Stats {
	st := &core.Stats{Cycles: 1000}
	st.Committed[0] = 100 * quality
	st.Committed[1] = 100 * quality
	return st
}

// --- End-to-end: local vs server byte identity, paper point -------------

// smokeOptions returns a tiny 2-workload study of the smoke space.
func smokeStudy(t *testing.T, be Backend, metrics *obs.Registry) *Study {
	t.Helper()
	spec, _ := Builtin("smoke")
	st, err := Search(context.Background(), Options{
		Spec:        spec,
		Seed:        7,
		Backend:     be,
		Workloads:   []string{"libsvm", "twolf"},
		Concurrency: 4,
		Metrics:     metrics,
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestStudyByteIdentityLocalVsServer is the acceptance property: the same
// (spec, seed, budget) must produce byte-identical artifacts across runs
// AND across backends — the local pool and a live server fleet.
func TestStudyByteIdentityLocalVsServer(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates; short mode")
	}
	ctx := context.Background()
	mkLocal := func() *LocalBackend {
		be, err := NewLocalBackend(ctx, runner.Options{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		return be
	}

	local1 := mkLocal()
	reg := obs.NewRegistry()
	st1 := smokeStudy(t, local1, reg)
	local1.Close()
	b1, err := MarshalStudy(st1)
	if err != nil {
		t.Fatal(err)
	}
	if c := reg.Counter("mmt_dse_points_evaluated_total", "").Value(); c != 4 {
		t.Errorf("metrics counted %d evaluations, want 4", c)
	}

	local2 := mkLocal()
	st2 := smokeStudy(t, local2, nil)
	local2.Close()
	b2, err := MarshalStudy(st2)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Error("two local runs differ byte for byte")
	}

	// Same study through a live server.
	s, err := serve.New(ctx, serve.Options{Runner: runner.Options{Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s)
	defer func() {
		hs.Close()
		s.Close()
	}()
	st3 := smokeStudy(t, NewServerBackend(hs.URL), nil)
	b3, err := MarshalStudy(st3)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b3) {
		t.Error("server-backed study differs from local study byte for byte")
	}

	// The artifact round-trips through its own codec.
	back, err := UnmarshalStudy(b1)
	if err != nil {
		t.Fatal(err)
	}
	b4, err := MarshalStudy(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b4) {
		t.Error("artifact changed across a codec round trip")
	}
}

// TestPaperPointOnFrontier: in a sweep where every dimension tops out at
// the paper's Table 4 value, the paper design point is the highest-IPC
// configuration and must be a frontier member.
func TestPaperPointOnFrontier(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates; short mode")
	}
	ctx := context.Background()
	spec := &Spec{
		Name:     "paper-check",
		MaxInsts: 20_000,
		Dimensions: []Dimension{
			{Name: "fhb_size", Values: []int{8, 32}},
			{Name: "fetch_width", Values: []int{4, 8}},
			{Name: "lvip_size", Values: []int{1024, 4096}},
			{Name: "sync_policy", Strings: []string{"hints", "fhb"}},
		},
	}
	be, err := NewLocalBackend(ctx, runner.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()
	st, err := Search(ctx, Options{
		Spec: spec, Seed: 1, Backend: be,
		Workloads:   []string{"libsvm", "twolf"},
		Concurrency: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	paper := spec.PaperPointID()
	if paper == "" {
		t.Fatal("space cannot express the paper point")
	}
	found := false
	for _, id := range st.Frontier {
		if id == paper {
			found = true
		}
	}
	if !found {
		t.Errorf("paper design point %s not on frontier %v", paper, st.Frontier)
	}
}

// TestResumeProducesIdenticalArtifact: interrupting a halving study after
// its checkpoint and resuming must end in the exact bytes of an
// uninterrupted run, with identical budget accounting.
func TestResumeProducesIdenticalArtifact(t *testing.T) {
	spec := &Spec{
		Name:    "resume-test",
		Sampler: "halving",
		Rungs:   []uint64{1000, 2000},
		Dimensions: []Dimension{
			{Name: "fhb_size", Values: []int{2, 4, 8, 16}},
		},
	}
	dir := t.TempDir()
	full := filepath.Join(dir, "full.json")
	if _, err := Search(context.Background(), Options{
		Spec: spec, Seed: 3, Backend: newCountingBackend(),
		Workloads: []string{"libsvm"}, CheckpointPath: full,
	}); err != nil {
		t.Fatal(err)
	}

	// "Interrupt": run rung 0 only by capping the budget at the rung size,
	// then resume from the checkpoint with the full budget.
	part := filepath.Join(dir, "part.json")
	if _, err := Search(context.Background(), Options{
		Spec: spec, Seed: 3, Budget: 4, Backend: newCountingBackend(),
		Workloads: []string{"libsvm"}, CheckpointPath: part,
	}); err != nil {
		t.Fatal(err)
	}
	partial, err := LoadStudy(part)
	if err != nil {
		t.Fatal(err)
	}
	resumed := filepath.Join(dir, "resumed.json")
	be := newCountingBackend()
	if _, err := Search(context.Background(), Options{
		Spec: spec, Seed: 3, Backend: be, Resume: partial,
		Workloads: []string{"libsvm"}, CheckpointPath: resumed,
	}); err != nil {
		t.Fatal(err)
	}
	// Only the second rung simulated fresh.
	if len(be.runs) != 2 {
		t.Errorf("resume re-ran %d evaluations, want 2 (rung 1 only)", len(be.runs))
	}
	fullSt, err := LoadStudy(full)
	if err != nil {
		t.Fatal(err)
	}
	resumedSt, err := LoadStudy(resumed)
	if err != nil {
		t.Fatal(err)
	}
	fb, _ := MarshalStudy(fullSt)
	rb, _ := MarshalStudy(resumedSt)
	if string(fb) != string(rb) {
		t.Error("resumed study differs from uninterrupted study byte for byte")
	}
}

// TestStudyValidateRejectsTamperedFrontier: an artifact whose frontier
// disagrees with its own points must not load.
func TestStudyValidateRejectsTamperedFrontier(t *testing.T) {
	spec := &Spec{
		Name:       "tamper-test",
		Dimensions: []Dimension{{Name: "fhb_size", Values: []int{2, 4}}},
	}
	st, err := Search(context.Background(), Options{
		Spec: spec, Seed: 1, Backend: newCountingBackend(), Workloads: []string{"libsvm"},
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MarshalStudy(st)
	if err != nil {
		t.Fatal(err)
	}
	st.Frontier = append(st.Frontier, "fhb_size=2")
	if _, err := MarshalStudy(st); err == nil {
		t.Error("marshaled a study with a padded frontier")
	}
	if _, err := UnmarshalStudy(b); err != nil {
		t.Errorf("valid artifact rejected: %v", err)
	}
}

// renderSmokeTable exercises WriteFrontier (no assertions beyond not
// exploding and naming the paper point when present).
func TestWriteFrontierRenders(t *testing.T) {
	spec := &Spec{
		Name:       "render-test",
		Dimensions: []Dimension{{Name: "fhb_size", Values: []int{8, 16, 32}}},
	}
	st, err := Search(context.Background(), Options{
		Spec: spec, Seed: 1, Backend: newCountingBackend(), Workloads: []string{"libsvm"},
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	st.WriteFrontier(&sb)
	out := sb.String()
	if out == "" {
		t.Fatal("empty render")
	}
	if want := "fhb_size=32"; !strings.Contains(out, want) {
		t.Errorf("render lacks the best point %s:\n%s", want, out)
	}
	if !strings.Contains(out, "paper design point") {
		t.Errorf("render does not mark the paper point:\n%s", out)
	}
}
