package dse

import (
	"context"
	"fmt"

	"mmt/internal/runner"
	"mmt/internal/serve"
	"mmt/internal/serve/client"
	"mmt/internal/sim"
)

// Backend executes one candidate evaluation. The engine only ever speaks
// wire-form TaskSpecs, so the same study runs unchanged against the local
// worker pool or a live mmtserved fleet — and, because tasks are content-
// addressed and the simulator is deterministic, produces byte-identical
// artifacts either way.
type Backend interface {
	// Run resolves and executes the spec, honoring ctx cancellation.
	Run(ctx context.Context, spec sim.TaskSpec) (*sim.Outcome, error)
	// Name labels the backend in progress output (never in artifacts).
	Name() string
}

// LocalBackend evaluates on an in-process runner.Pool, inheriting its
// content-addressed dedup, persistent cache and retries.
type LocalBackend struct{ pool *runner.Pool }

// NewLocalBackend starts a pool with the given options.
func NewLocalBackend(ctx context.Context, opts runner.Options) (*LocalBackend, error) {
	pool, err := runner.New(ctx, opts)
	if err != nil {
		return nil, err
	}
	return &LocalBackend{pool: pool}, nil
}

// Run resolves the spec and executes it on the pool.
func (b *LocalBackend) Run(ctx context.Context, spec sim.TaskSpec) (*sim.Outcome, error) {
	task, err := spec.Task()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return b.pool.Do(task)
}

// Name implements Backend.
func (b *LocalBackend) Name() string { return "local" }

// Close drains the pool.
func (b *LocalBackend) Close() { b.pool.Close() }

// ServerBackend evaluates against a running mmtserved (or mmtrouter
// fleet): submissions dedup and cache server-side, so concurrent studies
// and repeated rungs share work across clients.
type ServerBackend struct {
	c    *client.Client
	base string
}

// NewServerBackend returns a backend for the server at base
// (e.g. "http://127.0.0.1:8377").
func NewServerBackend(base string) *ServerBackend {
	return &ServerBackend{c: client.New(base, nil), base: base}
}

// Run submits the spec and waits for its outcome.
func (b *ServerBackend) Run(ctx context.Context, spec sim.TaskSpec) (*sim.Outcome, error) {
	out, st, err := b.c.Run(ctx, serve.SubmitRequest{Task: spec})
	if err != nil {
		return nil, err
	}
	if out == nil {
		return nil, fmt.Errorf("dse: server job %s finished %s without an outcome", st.ID, st.State)
	}
	return out, nil
}

// Name implements Backend.
func (b *ServerBackend) Name() string { return "server " + b.base }
