package dse

import (
	"context"
	"fmt"

	"mmt/internal/runner"
	"mmt/internal/serve"
	"mmt/internal/serve/client"
	"mmt/internal/sim"
)

// Backend executes one candidate evaluation. The engine only ever speaks
// wire-form TaskSpecs, so the same study runs unchanged against the local
// worker pool or a live mmtserved fleet — and, because tasks are content-
// addressed and the simulator is deterministic, produces byte-identical
// artifacts either way.
type Backend interface {
	// Run resolves and executes the spec, honoring ctx cancellation.
	Run(ctx context.Context, spec sim.TaskSpec) (*sim.Outcome, error)
	// Name labels the backend in progress output (never in artifacts).
	Name() string
}

// TracedBackend is implemented by backends that can carry a per-request
// correlation id end-to-end, so each evaluation's log line greps to the
// matching server-side spans and flight-ring entries.
type TracedBackend interface {
	RunTraced(ctx context.Context, spec sim.TaskSpec, trace string) (*sim.Outcome, error)
}

// runOn dispatches one evaluation, threading the trace id through when the
// backend supports it.
func runOn(ctx context.Context, be Backend, spec sim.TaskSpec, trace string) (*sim.Outcome, error) {
	if tb, ok := be.(TracedBackend); ok && trace != "" {
		return tb.RunTraced(ctx, spec, trace)
	}
	return be.Run(ctx, spec)
}

// LocalBackend evaluates on an in-process runner.Pool, inheriting its
// content-addressed dedup, persistent cache and retries.
type LocalBackend struct{ pool *runner.Pool }

// NewLocalBackend starts a pool with the given options.
func NewLocalBackend(ctx context.Context, opts runner.Options) (*LocalBackend, error) {
	pool, err := runner.New(ctx, opts)
	if err != nil {
		return nil, err
	}
	return &LocalBackend{pool: pool}, nil
}

// Run resolves the spec and executes it on the pool.
func (b *LocalBackend) Run(ctx context.Context, spec sim.TaskSpec) (*sim.Outcome, error) {
	task, err := spec.Task()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return b.pool.Do(task)
}

// RunTraced implements TracedBackend: the id rides the task into the
// pool's job timeline (and flight ring, when one is wired).
func (b *LocalBackend) RunTraced(ctx context.Context, spec sim.TaskSpec, trace string) (*sim.Outcome, error) {
	task, err := spec.Task()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	task.TraceID = trace
	return b.pool.Do(task)
}

// Name implements Backend.
func (b *LocalBackend) Name() string { return "local" }

// Close drains the pool.
func (b *LocalBackend) Close() { b.pool.Close() }

// ServerBackend evaluates against a running mmtserved (or mmtrouter
// fleet): submissions dedup and cache server-side, so concurrent studies
// and repeated rungs share work across clients.
type ServerBackend struct {
	c    *client.Client
	base string
}

// NewServerBackend returns a backend for the server at base
// (e.g. "http://127.0.0.1:8377").
func NewServerBackend(base string) *ServerBackend {
	return &ServerBackend{c: client.New(base, nil), base: base}
}

// Run submits the spec and waits for its outcome.
func (b *ServerBackend) Run(ctx context.Context, spec sim.TaskSpec) (*sim.Outcome, error) {
	out, st, err := b.c.Run(ctx, serve.SubmitRequest{Task: spec})
	if err != nil {
		return nil, err
	}
	if out == nil {
		return nil, fmt.Errorf("dse: server job %s finished %s without an outcome", st.ID, st.State)
	}
	return out, nil
}

// RunTraced implements TracedBackend: the id becomes the submission's
// trace_id, unifying the client-side log line with the server's spans.
func (b *ServerBackend) RunTraced(ctx context.Context, spec sim.TaskSpec, trace string) (*sim.Outcome, error) {
	out, st, err := b.c.Run(ctx, serve.SubmitRequest{Task: spec, TraceID: trace})
	if err != nil {
		return nil, err
	}
	if out == nil {
		return nil, fmt.Errorf("dse: server job %s finished %s without an outcome", st.ID, st.State)
	}
	return out, nil
}

// Name implements Backend.
func (b *ServerBackend) Name() string { return "server " + b.base }
