package dse

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"sync"

	"mmt/internal/obs"
	"mmt/internal/power"
	"mmt/internal/sim"
	"mmt/internal/workloads"
)

// Options configures one exploration.
type Options struct {
	// Spec is the search space (required).
	Spec *Spec
	// Seed drives the sampler; the same (spec, seed, budget, workloads)
	// always evaluates the same points in the same order.
	Seed uint64
	// Budget caps (point, rung) evaluations; 0 means unbounded. Static
	// rejects and resumed results both count the same as fresh
	// evaluations would — the budget describes the study's size, not
	// this process's spend — so resuming cannot change which points a
	// study covers.
	Budget int
	// Workloads overrides the spec's workload list (nil keeps it; an
	// empty spec list means all sixteen paper kernels).
	Workloads []string
	// Backend executes the simulations (required).
	Backend Backend
	// Concurrency bounds in-flight evaluations per rung (<= 0 means 1;
	// results are committed in sampler order regardless).
	Concurrency int
	// Progress, when non-nil, receives one line per rung and per
	// evaluated point (point stderr here; artifacts go to stdout).
	Progress io.Writer
	// Metrics, when non-nil, receives the mmt_dse_* counters/gauges.
	Metrics *obs.Registry
	// Log, when non-nil, receives structured request-scoped lines: one per
	// evaluation, stamped with the trace id the backend carried (nil
	// discards them). Progress stays the human-readable channel.
	Log *slog.Logger
	// Resume, when non-nil, is a prior (typically Partial) study of the
	// same space: its results are reused instead of re-simulated.
	Resume *Study
	// CheckpointPath, when non-empty, atomically writes a Partial study
	// after every rung, so an interrupted exploration can resume.
	CheckpointPath string
}

// metrics is the engine's instrumentation (all nil-safe no-ops when no
// registry is given).
type metrics struct {
	points, sims, rejects, insts *obs.Counter
	frontier, rung               *obs.Gauge
}

func newMetrics(r *obs.Registry) metrics {
	if r == nil {
		return metrics{}
	}
	return metrics{
		points:   r.Counter("mmt_dse_points_evaluated_total", "design points evaluated (point,rung pairs)"),
		sims:     r.Counter("mmt_dse_simulations_total", "individual workload simulations requested"),
		rejects:  r.Counter("mmt_dse_static_rejects_total", "candidates discarded by the static filter"),
		insts:    r.Counter("mmt_dse_committed_insts_total", "committed instructions across all simulations"),
		frontier: r.Gauge("mmt_dse_frontier_size", "current Pareto frontier size"),
		rung:     r.Gauge("mmt_dse_rung", "successive-halving rung in progress"),
	}
}

func (m metrics) addPoint() {
	if m.points != nil {
		m.points.Inc()
	}
}
func (m metrics) addSims(n int) {
	if m.sims != nil {
		m.sims.Add(uint64(n))
	}
}
func (m metrics) addReject() {
	if m.rejects != nil {
		m.rejects.Inc()
	}
}
func (m metrics) addInsts(n uint64) {
	if m.insts != nil {
		m.insts.Add(n)
	}
}
func (m metrics) setFrontier(n int) {
	if m.frontier != nil {
		m.frontier.Set(int64(n))
	}
}
func (m metrics) setRung(r int) {
	if m.rung != nil {
		m.rung.Set(int64(r))
	}
}

// Search runs the exploration to completion (or budget exhaustion) and
// returns the finished study.
func Search(ctx context.Context, opts Options) (*Study, error) {
	spec := opts.Spec
	if spec == nil {
		return nil, fmt.Errorf("dse: no search space")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if opts.Backend == nil {
		return nil, fmt.Errorf("dse: no backend")
	}
	apps := opts.Workloads
	if apps == nil {
		apps = spec.Workloads
	}
	if len(apps) == 0 {
		apps = workloads.Names()
	}
	for _, name := range apps {
		if _, ok := workloads.ByName(name); !ok {
			return nil, fmt.Errorf("dse: unknown workload %q", name)
		}
	}
	m := newMetrics(opts.Metrics)
	progress := opts.Progress
	if progress == nil {
		progress = io.Discard
	}
	logg := opts.Log
	if logg == nil {
		logg = slog.New(slog.NewTextHandler(io.Discard, nil))
	}

	var filter *StaticFilter
	if spec.Filter != nil && (spec.Filter.MinReconvCoverage > 0 || spec.Filter.Rank) {
		var err error
		filter, err = NewStaticFilter(apps, spec.Filter.MinReconvCoverage, spec.Filter.Rank)
		if err != nil {
			return nil, err
		}
	}

	var reuse map[string]*PointResult
	if opts.Resume != nil {
		if opts.Resume.Space.Name != spec.Name {
			return nil, fmt.Errorf("dse: resume study searched space %q, not %q",
				opts.Resume.Space.Name, spec.Name)
		}
		reuse = opts.Resume.resultByKey()
	}

	st := &Study{
		Schema:    StudySchema,
		Space:     *spec,
		Seed:      opts.Seed,
		Workloads: apps,
		Budget:    BudgetReport{Limit: opts.Budget},
	}

	// The rung-0 cohort: every space point in sampler order, minus the
	// static rejects (recorded in place, free of budget).
	var cohort []Point
	for _, idx := range sampleOrder(spec, opts.Seed) {
		p := spec.PointAt(idx)
		if filter != nil {
			if reason := filter.Reject(&p.Override); reason != "" {
				st.Points = append(st.Points, PointResult{
					ID: p.ID, Config: p.Override, Rejected: true, Reason: reason,
				})
				st.Budget.StaticRejects++
				m.addReject()
				fmt.Fprintf(progress, "dse: reject %s: %s\n", p.ID, reason)
				continue
			}
		}
		cohort = append(cohort, p)
	}

	// The static ranker: order rung 0 statically best first. A stable
	// sort on the pure cost-model score keeps ties in sampler order, so
	// the attempted order is a deterministic function of (spec, seed).
	// Under a full budget the evaluated SET is unchanged and promotion is
	// content-based, so the frontier is byte-identical to an unranked run.
	if filter.Ranking() {
		scores := make([]float64, len(cohort))
		for i := range cohort {
			scores[i] = filter.Score(&cohort[i].Override)
		}
		idx := make([]int, len(cohort))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
		ranked := make([]Point, len(cohort))
		for i, j := range idx {
			ranked[i] = cohort[j]
		}
		cohort = ranked
		for i := range cohort {
			fmt.Fprintf(progress, "dse: rank %d: %s (score %.4f)\n", i, cohort[i].ID, scores[idx[i]])
		}
	}

	rungs := spec.rungs()
	for r := 0; r < len(rungs) && len(cohort) > 0; r++ {
		m.setRung(r)
		// Budget: how much of this cohort is affordable.
		n := len(cohort)
		if opts.Budget > 0 {
			if left := opts.Budget - st.Budget.Evaluations; left < n {
				n = left
				st.Budget.Truncated = true
			}
		}
		fmt.Fprintf(progress, "dse: rung %d/%d: %d points at %d insts on %s\n",
			r+1, len(rungs), n, rungs[r], opts.Backend.Name())
		results, err := evaluateCohort(ctx, opts.Backend, spec, apps, cohort[:n], r, rungs[r],
			opts.Concurrency, reuse, progress, logg, m)
		if err != nil {
			return nil, err
		}
		st.Points = append(st.Points, results...)
		st.Budget.Evaluations += len(results)
		for i := range results {
			st.Budget.Simulations += len(results[i].PerApp)
			for _, a := range results[i].PerApp {
				st.Budget.CommittedInsts += a.Insts
			}
		}
		m.setFrontier(len(st.computeFrontier()))
		if opts.CheckpointPath != "" && r < len(rungs)-1 {
			st.Partial = true
			st.Frontier = st.computeFrontier()
			if err := WriteStudy(opts.CheckpointPath, st); err != nil {
				return nil, fmt.Errorf("dse: checkpoint: %w", err)
			}
		}
		if st.Budget.Truncated || r == len(rungs)-1 {
			break
		}
		// Successive halving: promote the Pareto-best 1/eta to the next
		// (longer) rung.
		ids := make([]string, n)
		objs := make([]Objectives, n)
		for i := range results {
			ids[i], objs[i] = results[i].ID, results[i].Objectives
		}
		keep := (n + spec.eta() - 1) / spec.eta()
		order := promote(ids, objs)
		next := make([]Point, 0, keep)
		for _, i := range order[:keep] {
			next = append(next, cohort[i])
		}
		fmt.Fprintf(progress, "dse: rung %d promotes %d/%d survivors\n", r+1, keep, n)
		cohort = next
	}

	st.Partial = false
	st.Frontier = st.computeFrontier()
	m.setFrontier(len(st.Frontier))
	if opts.CheckpointPath != "" {
		if err := WriteStudy(opts.CheckpointPath, st); err != nil {
			return nil, fmt.Errorf("dse: writing study: %w", err)
		}
	}
	return st, nil
}

// evaluateCohort runs one rung's points, Concurrency at a time, and
// returns their results in cohort order (parallelism never reorders the
// artifact). The first error in cohort order wins.
func evaluateCohort(ctx context.Context, be Backend, spec *Spec, apps []string,
	cohort []Point, rung int, maxInsts uint64, concurrency int,
	reuse map[string]*PointResult, progress io.Writer, logg *slog.Logger, m metrics) ([]PointResult, error) {

	if concurrency <= 0 {
		concurrency = 1
	}
	results := make([]PointResult, len(cohort))
	errs := make([]error, len(cohort))
	sem := make(chan struct{}, concurrency)
	var wg sync.WaitGroup
	for i := range cohort {
		if prev, ok := reuse[fmt.Sprintf("%s@%d", cohort[i].ID, rung)]; ok && !prev.Rejected {
			results[i] = *prev
			m.addPoint()
			m.addSims(len(prev.PerApp))
			fmt.Fprintf(progress, "dse: reuse %s@%d: IPC %.3f, %.1f pJ/job\n",
				prev.ID, rung, prev.Objectives.IPC, prev.Objectives.EnergyPerJob)
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			pr, err := evaluatePoint(ctx, be, spec, apps, cohort[i], rung, maxInsts, logg)
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = *pr
			m.addPoint()
			m.addSims(len(pr.PerApp))
			for _, a := range pr.PerApp {
				m.addInsts(a.Insts)
			}
			fmt.Fprintf(progress, "dse: eval %s@%d: IPC %.3f, %.1f pJ/job\n",
				pr.ID, rung, pr.Objectives.IPC, pr.Objectives.EnergyPerJob)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// evaluatePoint simulates one candidate on every workload and aggregates
// the two objectives: IPC as the geometric mean (the paper's throughput
// aggregate) and energy/job as the arithmetic mean, plus the summed
// per-structure energy breakdown in canonical component form.
func evaluatePoint(ctx context.Context, be Backend, spec *Spec, apps []string,
	p Point, rung int, maxInsts uint64, logg *slog.Logger) (*PointResult, error) {

	override := p.Override
	override.MaxInsts = maxInsts
	pr := &PointResult{ID: p.ID, Rung: rung, Config: override}
	model := power.NewModel()
	var ipcs []float64
	var epjSum float64
	detail := map[string]float64{}
	for _, app := range apps {
		ov := override
		ts := sim.TaskSpec{App: app, Preset: spec.Preset, Threads: spec.Threads, Config: &ov}
		// The trace id is deterministic (point, rung, app), so re-running a
		// study greps to the same server-side spans and flight entries.
		trace := fmt.Sprintf("dse-%s-r%d-%s", p.ID, rung, app)
		out, err := runOn(ctx, be, ts, trace)
		if err != nil {
			logg.Warn("evaluation failed", "point", p.ID, "rung", rung, "app", app,
				"trace", trace, "error", err.Error())
			return nil, fmt.Errorf("dse: %s on %s: %w", p.ID, app, err)
		}
		logg.Debug("evaluation done", "point", p.ID, "rung", rung, "app", app, "trace", trace)
		res := out.Result
		if res == nil || res.Stats == nil {
			return nil, fmt.Errorf("dse: %s on %s: outcome has no result", p.ID, app)
		}
		epj := model.EnergyPerJob(res.Stats, res.Mem)
		pr.PerApp = append(pr.PerApp, AppResult{
			App:          app,
			IPC:          res.IPC(),
			EnergyPerJob: epj,
			Cycles:       res.Stats.Cycles,
			Insts:        res.Stats.TotalCommitted(),
		})
		ipcs = append(ipcs, res.IPC())
		epjSum += epj
		power.AddComponents(detail, model.DetailedComponents(res.Stats, res.Mem))
	}
	pr.Objectives = Objectives{
		IPC:          sim.Geomean(ipcs),
		EnergyPerJob: epjSum / float64(len(apps)),
	}
	pr.Energy = power.Components(detail)
	return pr, nil
}
