package prof

import (
	"reflect"
	"testing"

	"mmt/internal/asm"
	"mmt/internal/core"
	"mmt/internal/prog"
)

// divergeSrc makes the two ME instances take different paths depending on
// a per-instance input, then re-join at "join" — one dominant divergence
// site (the bnez at "outer") for attribution to find.
const divergeSrc = `
        li    r4, input
        ld    r5, 0(r4)          ; per-instance input: 0 or 1
        li    r6, 0
        li    r7, 20
outer:  bnez  r5, odd
        addi  r6, r6, 1          ; even path
        addi  r6, r6, 3
        j     join
odd:    addi  r6, r6, 2         ; odd path: different length
        addi  r6, r6, 1
        addi  r6, r6, 1
join:   addi  r7, r7, -1
        bnez  r7, outer
        halt
        .data
input:  .word 0
`

// runProfiled simulates divergeSrc on two divergent ME instances with a
// profiler attached and returns the run's stats and profile snapshot.
func runProfiled(t *testing.T) (*core.Stats, *Profile) {
	t.Helper()
	p, err := asm.Assemble("test", divergeSrc)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := prog.NewSystem(p, prog.ModeME, 2, func(ctx int, mem *prog.Memory) {
		mem.Write64(prog.DataBase, uint64(ctx%2))
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(2)
	cfg.MaxCycles = 2_000_000
	c, err := core.New(cfg, sys)
	if err != nil {
		t.Fatal(err)
	}
	pr := New()
	c.AttachProbe(pr)
	st, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	return st, pr.Snapshot()
}

// TestCPIStackSumsToCycles is the accounting invariant: every simulated
// cycle is charged to exactly one CPI-stack component.
func TestCPIStackSumsToCycles(t *testing.T) {
	st, p := runProfiled(t)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Cycles != st.Cycles {
		t.Errorf("profile covers %d cycles, run took %d", p.Cycles, st.Cycles)
	}
	if got := p.CPI.Total(); got != st.Cycles {
		t.Errorf("CPI stack sums to %d, run took %d cycles", got, st.Cycles)
	}
	if p.CPI.Base == 0 {
		t.Error("no base cycles on a committing run")
	}
}

// TestTopSiteMatchesDivergenceHistogram: the profile's hottest divergence
// site must agree with the core's own DivergencePCs histogram.
func TestTopSiteMatchesDivergenceHistogram(t *testing.T) {
	st, p := runProfiled(t)
	if st.Divergences == 0 {
		t.Fatal("workload did not diverge")
	}
	var hotPC, hotN uint64
	for pc, n := range st.DivergencePCs {
		if n > hotN || (n == hotN && pc < hotPC) {
			hotPC, hotN = pc, n
		}
	}
	top := p.TopSites(0)
	if len(top) == 0 {
		t.Fatal("empty profile")
	}
	var topDiverge *SiteStats
	for i := range top {
		if top[i].Divergences > 0 {
			topDiverge = &top[i]
			break
		}
	}
	if topDiverge == nil {
		t.Fatal("no site with divergences in the profile")
	}
	if topDiverge.PC != hotPC {
		t.Errorf("profile's hot divergence site %#x, core histogram says %#x", topDiverge.PC, hotPC)
	}
	if topDiverge.Divergences != hotN {
		t.Errorf("profile charges %d divergences to %#x, histogram has %d", topDiverge.Divergences, hotPC, hotN)
	}
	if topDiverge.Remerges == 0 {
		t.Error("hot divergence site never remerged")
	}
}

// TestProfileJSONRoundTrip: Marshal → ParseProfile is lossless.
func TestProfileJSONRoundTrip(t *testing.T) {
	_, p := runProfiled(t)
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseProfile(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Errorf("round trip drifted:\nbefore %+v\nafter  %+v", p, got)
	}
}

// TestParseProfileRejectsOtherSchemas: a version bump must fail loudly,
// not decode garbage.
func TestParseProfileRejectsOtherSchemas(t *testing.T) {
	_, p := runProfiled(t)
	p.Schema = SchemaVersion + 1
	if _, err := p.Marshal(); err == nil {
		t.Error("Marshal accepted a foreign schema")
	}
	p.Schema = SchemaVersion
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	bad := []byte(`{"schema":99,"cycles":0,"cpi":{"base":0,"fetch_stall":0,"catchup":0,"rollback":0,"drain":0}}`)
	if _, err := ParseProfile(bad); err == nil {
		t.Error("ParseProfile accepted schema 99")
	}
	if _, err := ParseProfile(b[:len(b)/2]); err == nil {
		t.Error("ParseProfile accepted truncated JSON")
	}
}

// TestMergeDoubles: merging a profile into a fresh one twice doubles
// every additive quantity.
func TestMergeDoubles(t *testing.T) {
	_, p := runProfiled(t)
	m := &Profile{Schema: SchemaVersion}
	m.Merge(p)
	m.Merge(p)
	if m.Cycles != 2*p.Cycles || m.CPI.Total() != 2*p.CPI.Total() {
		t.Errorf("merged cycles=%d CPI=%d, want double of %d/%d", m.Cycles, m.CPI.Total(), p.Cycles, p.CPI.Total())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(m.Sites) != len(p.Sites) {
		t.Fatalf("merged %d sites, source has %d", len(m.Sites), len(p.Sites))
	}
	for i := range p.Sites {
		if m.Sites[i].Merged != 2*p.Sites[i].Merged || m.Sites[i].Divergences != 2*p.Sites[i].Divergences {
			t.Errorf("site %#x not doubled: %+v vs %+v", p.Sites[i].PC, m.Sites[i], p.Sites[i])
		}
	}
}

// TestProfilerOverflowAndPC0: PC 0 is unattributable and dropped; sites
// past the cap pool into the overflow cell.
func TestProfilerOverflowAndPC0(t *testing.T) {
	p := NewWithCap(1)
	p.Diverge(0, 2)    // PC 0: skipped
	p.Diverge(0x10, 2) // the one tracked site
	p.Diverge(0x20, 2) // past the cap: pooled
	p.CatchupCycle(0x20)
	p.Cycle(core.CycBase)
	s := p.Snapshot()
	if len(s.Sites) != 1 || s.Sites[0].PC != 0x10 || s.Sites[0].Divergences != 1 {
		t.Errorf("sites = %+v", s.Sites)
	}
	if s.Overflow == nil || s.Overflow.Divergences != 1 || s.Overflow.CatchupCycles != 1 {
		t.Errorf("overflow = %+v", s.Overflow)
	}
	if s.Cycles != 1 || s.CPI.Base != 1 {
		t.Errorf("cycles=%d cpi=%+v", s.Cycles, s.CPI)
	}
}

// TestRemergeEdges covers the edge ledger: unattributable endpoints are
// skipped, repeats accumulate, the snapshot is sorted, the cap counts
// drops, and Merge sums edge counts across shards.
func TestRemergeEdges(t *testing.T) {
	p := NewWithCap(2)
	p.Remerge(0, 0x1020, 1) // unknown divergence site
	p.Remerge(0x1010, 0, 1) // unknown remerge target
	p.Remerge(0x1010, 0x1020, 3)
	p.Remerge(0x1000, 0x1020, 1)
	p.Remerge(0x1010, 0x1020, 2) // same edge again
	p.Remerge(0x1030, 0x1040, 1) // third distinct edge: over the cap
	s := p.Snapshot()
	want := []RemergeEdge{
		{DivergePC: 0x1000, RemergePC: 0x1020, Count: 1},
		{DivergePC: 0x1010, RemergePC: 0x1020, Count: 2},
	}
	if !reflect.DeepEqual(s.RemergeEdges, want) {
		t.Errorf("edges = %+v, want %+v", s.RemergeEdges, want)
	}
	if s.RemergeEdgesDropped != 1 {
		t.Errorf("dropped = %d, want 1", s.RemergeEdgesDropped)
	}

	m := &Profile{Schema: SchemaVersion}
	m.Merge(s)
	m.Merge(s)
	if got := m.RemergeEdges[1].Count; got != 4 {
		t.Errorf("merged edge count = %d, want 4", got)
	}
	if m.RemergeEdgesDropped != 2 {
		t.Errorf("merged dropped = %d, want 2", m.RemergeEdgesDropped)
	}
}

// TestRemergeEdgesObserved: a real divergent run records edges, and every
// edge's divergence endpoint is a site the profiler saw diverge.
func TestRemergeEdgesObserved(t *testing.T) {
	_, profile := runProfiled(t)
	if len(profile.RemergeEdges) == 0 {
		t.Fatal("divergent run recorded no remerge edges")
	}
	diverged := map[uint64]bool{}
	for _, s := range profile.Sites {
		if s.Divergences > 0 {
			diverged[s.PC] = true
		}
	}
	for _, e := range profile.RemergeEdges {
		if e.Count == 0 {
			t.Errorf("edge %#x->%#x has zero count", e.DivergePC, e.RemergePC)
		}
		if !diverged[e.DivergePC] {
			t.Errorf("edge %#x->%#x: divergence PC has no recorded divergence", e.DivergePC, e.RemergePC)
		}
	}
}
