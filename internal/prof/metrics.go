package prof

import (
	"mmt/internal/core"
	"mmt/internal/obs"
)

// PublishCoreStats exports a finished run's core statistics as
// mmt_core_* gauges on reg, so a -metrics-addr endpoint exposes the
// final machine counters next to the live runner metrics. Gauges (not
// counters): the values are end-of-run snapshots, re-published wholesale
// if the process runs another simulation.
func PublishCoreStats(reg *obs.Registry, s *core.Stats) {
	if reg == nil || s == nil {
		return
	}
	set := func(name, help string, v uint64) {
		reg.Gauge(name, help).Set(int64(v))
	}
	set("mmt_core_cycles", "Simulated cycles of the last completed run.", s.Cycles)
	set("mmt_core_committed_insts", "Committed per-thread instructions of the last completed run.", s.TotalCommitted())
	set("mmt_core_fetch_accesses", "Front-end fetch operations of the last completed run.", s.FetchAccesses)
	set("mmt_core_divergences", "Fetch-group divergences of the last completed run.", s.Divergences)
	set("mmt_core_remerges", "Fetch-group remerges of the last completed run.", s.Remerges)
	set("mmt_core_catchups_started", "CATCHUP episodes started in the last completed run.", s.CatchupsStarted)
	set("mmt_core_catchups_aborted", "CATCHUP episodes aborted in the last completed run.", s.CatchupsAborted)
	set("mmt_core_mispredicts", "Branch mispredicts of the last completed run.", s.Mispredicts)
	set("mmt_core_lvip_rollbacks", "LVIP value-mispredict rollbacks of the last completed run.", s.LVIPRollbacks)
	set("mmt_core_squashed_uops", "Uops squashed by rollbacks in the last completed run.", s.SquashedUops)
	set("mmt_core_reg_merge_hits", "Successful register merges of the last completed run.", s.RegMergeHits)
}
