// Package prof is the per-PC attribution profiler and CPI-stack cycle
// accounting layer. A Profiler implements core.Probe: attached to a
// simulated core it charges every committed uop, divergence, remerge,
// catchup cycle and LVIP event to the static instruction that caused it,
// and attributes every core cycle to one CPI-stack component (base /
// fetch-stall / catchup / rollback / drain). The snapshot, Profile, is a
// self-describing JSON document (SchemaVersion) that travels inside
// sim.Outcome — through the memo, the persistent result cache and the
// serving API — and renders as a ranked top-N text report.
package prof

import (
	"encoding/json"
	"fmt"
	"sort"

	"mmt/internal/core"
)

// SchemaVersion identifies the Profile JSON layout. Parsers reject other
// versions instead of misreading renamed fields.
//
// History: 1 initial layout; 2 added RemergeEdges (observed
// divergence->reconvergence edges for static cross-validation).
const SchemaVersion = 2

// DefaultMaxSites bounds the per-PC map, mirroring core.MaxDivergencePCs:
// attribution beyond the first DefaultMaxSites distinct PCs (in
// deterministic simulation order) pools into the overflow site, so
// pathological programs cannot grow a profile without bound.
const DefaultMaxSites = 4096

// SiteStats is everything attributed to one static PC.
type SiteStats struct {
	PC uint64 `json:"pc"`
	// Committed uop classification (per-uop, not per-thread): merged
	// executed once for several threads, split fetched merged but
	// executed per-thread, solo fetched alone.
	Merged uint64 `json:"merged,omitempty"`
	Split  uint64 `json:"split,omitempty"`
	Solo   uint64 `json:"solo,omitempty"`
	// Divergences counts group splits at this control instruction;
	// Remerges counts reunifications of groups this site split, with
	// RemergeDistSum accumulating their divergence-to-remerge distances
	// in taken branches (avg = RemergeDistSum/Remerges).
	Divergences    uint64 `json:"divergences,omitempty"`
	Remerges       uint64 `json:"remerges,omitempty"`
	RemergeDistSum uint64 `json:"remerge_dist_sum,omitempty"`
	// CatchupCycles counts cycles some behind group spent catching up
	// after diverging at this site.
	CatchupCycles uint64 `json:"catchup_cycles,omitempty"`
	// LVIP accounting for merged loads at this PC: verified-identical
	// hits, failed verifications, the redirect cycles they cost, and the
	// uops they squashed.
	LVIPHits        uint64 `json:"lvip_hits,omitempty"`
	LVIPMispredicts uint64 `json:"lvip_mispredicts,omitempty"`
	RollbackCycles  uint64 `json:"rollback_cycles,omitempty"`
	SquashedUops    uint64 `json:"squashed_uops,omitempty"`
}

// Cost is the ranking key for "what did this site cost the machine":
// cycles burned catching up after its divergences plus cycles burned
// rolling back its LVIP mispredicts.
func (s *SiteStats) Cost() uint64 { return s.CatchupCycles + s.RollbackCycles }

// add accumulates o into s (PC is kept).
func (s *SiteStats) add(o *SiteStats) {
	s.Merged += o.Merged
	s.Split += o.Split
	s.Solo += o.Solo
	s.Divergences += o.Divergences
	s.Remerges += o.Remerges
	s.RemergeDistSum += o.RemergeDistSum
	s.CatchupCycles += o.CatchupCycles
	s.LVIPHits += o.LVIPHits
	s.LVIPMispredicts += o.LVIPMispredicts
	s.RollbackCycles += o.RollbackCycles
	s.SquashedUops += o.SquashedUops
}

// zero reports whether nothing was attributed to the site.
func (s *SiteStats) zero() bool { return *s == SiteStats{PC: s.PC} }

// CPIStack decomposes a run's cycles into exclusive components; the
// fields sum to the profile's Cycles.
type CPIStack struct {
	Base       uint64 `json:"base"`
	FetchStall uint64 `json:"fetch_stall"`
	Catchup    uint64 `json:"catchup"`
	Rollback   uint64 `json:"rollback"`
	Drain      uint64 `json:"drain"`
}

// Total sums the stack's components.
func (c CPIStack) Total() uint64 {
	return c.Base + c.FetchStall + c.Catchup + c.Rollback + c.Drain
}

// Components returns the stack in display order with stable names.
func (c CPIStack) Components() []struct {
	Name   string
	Cycles uint64
} {
	return []struct {
		Name   string
		Cycles uint64
	}{
		{"base", c.Base},
		{"fetch-stall", c.FetchStall},
		{"catchup", c.Catchup},
		{"rollback", c.Rollback},
		{"drain", c.Drain},
	}
}

// Profile is the serializable attribution snapshot.
type Profile struct {
	// Schema is SchemaVersion at write time; ParseProfile rejects
	// mismatches.
	Schema int `json:"schema"`
	// Cycles is the simulated cycle count the CPI stack decomposes.
	Cycles uint64   `json:"cycles"`
	CPI    CPIStack `json:"cpi"`
	// Sites is sorted by PC ascending (canonical order; rank with
	// TopSites).
	Sites []SiteStats `json:"sites,omitempty"`
	// Overflow pools attribution beyond the profiler's site cap (PC 0).
	Overflow *SiteStats `json:"overflow,omitempty"`
	// RemergeEdges are the observed (divergence site -> reconvergence PC)
	// pairs with occurrence counts, sorted by diverge then remerge PC.
	// Edges whose divergence site is unknown (PC 0, e.g. the initial
	// whole-machine groups merging at startup) are not recorded.
	RemergeEdges []RemergeEdge `json:"remerge_edges,omitempty"`
	// RemergeEdgesDropped counts edges beyond the profiler's cap.
	RemergeEdgesDropped uint64 `json:"remerge_edges_dropped,omitempty"`
}

// RemergeEdge is one observed divergence->reconvergence pair.
type RemergeEdge struct {
	DivergePC uint64 `json:"diverge_pc"`
	RemergePC uint64 `json:"remerge_pc"`
	Count     uint64 `json:"count"`
}

// Profiler accumulates attribution from one single-threaded core. It is
// not safe for concurrent use (neither is the core driving it).
type Profiler struct {
	maxSites     int
	sites        map[uint64]*SiteStats
	overflow     SiteStats
	edges        map[RemergeEdge]uint64 // key has Count == 0
	edgesDropped uint64
	cpi          [core.NumCycleComponents]uint64
	cycles       uint64
}

var _ core.Probe = (*Profiler)(nil)

// New returns a profiler with the DefaultMaxSites site bound.
func New() *Profiler { return NewWithCap(DefaultMaxSites) }

// NewWithCap returns a profiler tracking at most maxSites distinct PCs;
// later sites pool into the overflow entry.
func NewWithCap(maxSites int) *Profiler {
	if maxSites < 1 {
		maxSites = 1
	}
	return &Profiler{
		maxSites: maxSites,
		sites:    make(map[uint64]*SiteStats),
		edges:    make(map[RemergeEdge]uint64),
	}
}

// site returns the stats cell charged for pc: nil for the unattributable
// PC 0, the pooled overflow cell past the cap.
func (p *Profiler) site(pc uint64) *SiteStats {
	if pc == 0 {
		return nil
	}
	if s, ok := p.sites[pc]; ok {
		return s
	}
	if len(p.sites) >= p.maxSites {
		return &p.overflow
	}
	s := &SiteStats{PC: pc}
	p.sites[pc] = s
	return s
}

// CommitUop implements core.Probe.
func (p *Profiler) CommitUop(pc uint64, class core.CommitClass, threads int) {
	s := p.site(pc)
	if s == nil {
		return
	}
	switch class {
	case core.CommitMerged:
		s.Merged++
	case core.CommitSplit:
		s.Split++
	default:
		s.Solo++
	}
}

// Diverge implements core.Probe.
func (p *Profiler) Diverge(pc uint64, parts int) {
	if s := p.site(pc); s != nil {
		s.Divergences++
	}
}

// Remerge implements core.Probe.
func (p *Profiler) Remerge(divergePC, remergePC uint64, takenBranches uint64) {
	if s := p.site(divergePC); s != nil {
		s.Remerges++
		s.RemergeDistSum += takenBranches
	}
	if divergePC == 0 || remergePC == 0 {
		return // unattributable (initial groups, drained stream)
	}
	k := RemergeEdge{DivergePC: divergePC, RemergePC: remergePC}
	if _, ok := p.edges[k]; !ok && len(p.edges) >= p.maxSites {
		p.edgesDropped++
		return
	}
	p.edges[k]++
}

// CatchupCycle implements core.Probe.
func (p *Profiler) CatchupCycle(divergePC uint64) {
	if s := p.site(divergePC); s != nil {
		s.CatchupCycles++
	}
}

// LVIPHit implements core.Probe.
func (p *Profiler) LVIPHit(pc uint64) {
	if s := p.site(pc); s != nil {
		s.LVIPHits++
	}
}

// LVIPMispredict implements core.Probe.
func (p *Profiler) LVIPMispredict(pc uint64, penaltyCycles, squashed uint64) {
	if s := p.site(pc); s != nil {
		s.LVIPMispredicts++
		s.RollbackCycles += penaltyCycles
		s.SquashedUops += squashed
	}
}

// Cycle implements core.Probe.
func (p *Profiler) Cycle(comp core.CycleComponent) {
	if int(comp) < len(p.cpi) {
		p.cpi[comp]++
	}
	p.cycles++
}

// Snapshot renders the accumulated attribution as a Profile. Sites are
// sorted by PC; empty sites are dropped.
func (p *Profiler) Snapshot() *Profile {
	out := &Profile{
		Schema: SchemaVersion,
		Cycles: p.cycles,
		CPI: CPIStack{
			Base:       p.cpi[core.CycBase],
			FetchStall: p.cpi[core.CycFetchStall],
			Catchup:    p.cpi[core.CycCatchup],
			Rollback:   p.cpi[core.CycRollback],
			Drain:      p.cpi[core.CycDrain],
		},
	}
	for _, s := range p.sites { // mmtvet:ok — sorted by PC below
		if !s.zero() {
			out.Sites = append(out.Sites, *s)
		}
	}
	sort.Slice(out.Sites, func(i, j int) bool { return out.Sites[i].PC < out.Sites[j].PC })
	if !p.overflow.zero() {
		ov := p.overflow
		out.Overflow = &ov
	}
	for k, n := range p.edges { // mmtvet:ok — sortEdges below
		k.Count = n
		out.RemergeEdges = append(out.RemergeEdges, k)
	}
	sortEdges(out.RemergeEdges)
	out.RemergeEdgesDropped = p.edgesDropped
	return out
}

func sortEdges(es []RemergeEdge) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].DivergePC != es[j].DivergePC {
			return es[i].DivergePC < es[j].DivergePC
		}
		return es[i].RemergePC < es[j].RemergePC
	})
}

// Validate checks structural invariants: the schema version and the
// CPI stack summing to the cycle count.
func (p *Profile) Validate() error {
	if p.Schema != SchemaVersion {
		return fmt.Errorf("prof: profile schema %d, this build reads %d", p.Schema, SchemaVersion)
	}
	if t := p.CPI.Total(); t != p.Cycles {
		return fmt.Errorf("prof: CPI stack sums to %d cycles, profile has %d", t, p.Cycles)
	}
	return nil
}

// Marshal renders the canonical JSON encoding (trailing newline, ready
// for a -profile-out file).
func (p *Profile) Marshal() ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// ParseProfile decodes and validates a profile written by Marshal (or
// embedded in an outcome).
func ParseProfile(b []byte) (*Profile, error) {
	var p Profile
	if err := json.Unmarshal(b, &p); err != nil {
		return nil, fmt.Errorf("prof: decoding profile: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Merge accumulates o into p site-wise (for aggregating profiles across
// jobs, e.g. a load run's per-job profiles).
func (p *Profile) Merge(o *Profile) {
	if o == nil {
		return
	}
	p.Cycles += o.Cycles
	p.CPI.Base += o.CPI.Base
	p.CPI.FetchStall += o.CPI.FetchStall
	p.CPI.Catchup += o.CPI.Catchup
	p.CPI.Rollback += o.CPI.Rollback
	p.CPI.Drain += o.CPI.Drain
	byPC := make(map[uint64]int, len(p.Sites))
	for i := range p.Sites {
		byPC[p.Sites[i].PC] = i
	}
	for i := range o.Sites {
		s := &o.Sites[i]
		if j, ok := byPC[s.PC]; ok {
			p.Sites[j].add(s)
		} else {
			p.Sites = append(p.Sites, *s)
		}
	}
	sort.Slice(p.Sites, func(i, j int) bool { return p.Sites[i].PC < p.Sites[j].PC })
	if o.Overflow != nil {
		if p.Overflow == nil {
			p.Overflow = &SiteStats{}
		}
		p.Overflow.add(o.Overflow)
	}
	if len(o.RemergeEdges) > 0 {
		byEdge := make(map[RemergeEdge]int, len(p.RemergeEdges))
		for i, e := range p.RemergeEdges {
			e.Count = 0
			byEdge[e] = i
		}
		for _, e := range o.RemergeEdges {
			k := e
			k.Count = 0
			if j, ok := byEdge[k]; ok {
				p.RemergeEdges[j].Count += e.Count
			} else {
				p.RemergeEdges = append(p.RemergeEdges, e)
			}
		}
		sortEdges(p.RemergeEdges)
	}
	p.RemergeEdgesDropped += o.RemergeEdgesDropped
}

// TopSites returns up to n sites ranked most-expensive first: attributed
// cycles (Cost), then divergences, then PC for determinism.
func (p *Profile) TopSites(n int) []SiteStats {
	ranked := append([]SiteStats(nil), p.Sites...)
	sort.Slice(ranked, func(i, j int) bool {
		a, b := &ranked[i], &ranked[j]
		if a.Cost() != b.Cost() {
			return a.Cost() > b.Cost()
		}
		if a.Divergences != b.Divergences {
			return a.Divergences > b.Divergences
		}
		return a.PC < b.PC
	})
	if n > 0 && len(ranked) > n {
		ranked = ranked[:n]
	}
	return ranked
}
