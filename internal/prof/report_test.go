package prof

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// sampleProfile is a small deterministic profile exercising every report
// column: a divergence-heavy site, an LVIP-heavy site, a merged-only site
// and an overflow cell.
func sampleProfile() *Profile {
	return &Profile{
		Schema: SchemaVersion,
		Cycles: 1000,
		CPI:    CPIStack{Base: 600, FetchStall: 250, Catchup: 90, Rollback: 40, Drain: 20},
		Sites: []SiteStats{
			{PC: 0x40, Merged: 400, Split: 10, Solo: 2},
			{PC: 0x58, Merged: 30, Split: 70, Solo: 5, Divergences: 12, Remerges: 11,
				RemergeDistSum: 44, CatchupCycles: 90},
			{PC: 0x70, Merged: 120, LVIPHits: 50, LVIPMispredicts: 4,
				RollbackCycles: 40, SquashedUops: 28},
		},
		Overflow: &SiteStats{Divergences: 3, CatchupCycles: 7},
	}
}

// TestReportGolden locks the top-N report's exact layout.
func TestReportGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteReport(&buf, sampleProfile(), 2); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "report.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("report drifted from golden (rerun with -update and re-review)\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestReportTopN: topN truncates the ranking, 0 shows everything.
func TestReportTopN(t *testing.T) {
	var all, top1 bytes.Buffer
	p := sampleProfile()
	if err := WriteReport(&all, p, 0); err != nil {
		t.Fatal(err)
	}
	if err := WriteReport(&top1, p, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(all.String(), "top 3 sites") || !strings.Contains(top1.String(), "top 1 sites") {
		t.Errorf("topN headers wrong:\n%s\n%s", all.String(), top1.String())
	}
	// Rank: 0x58 (cost 90) > 0x70 (cost 40) > 0x40 (cost 0).
	if !strings.Contains(top1.String(), "0x58") || strings.Contains(top1.String(), "0x70") {
		t.Errorf("top-1 ranking wrong:\n%s", top1.String())
	}
}

// TestWriteDiff: the diff ranks sites by attributed-cycle movement and
// reports the cycle delta.
func TestWriteDiff(t *testing.T) {
	before := sampleProfile()
	after := sampleProfile()
	after.Cycles = 900
	after.CPI.FetchStall = 150
	after.Sites[1].CatchupCycles = 20 // 0x58 improved by 70
	var buf bytes.Buffer
	if err := WriteDiff(&buf, before, after, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "1000 -> 900 cycles (-10.0%)") {
		t.Errorf("missing cycle delta:\n%s", out)
	}
	if !strings.Contains(out, "0x58") || !strings.Contains(out, "-70") {
		t.Errorf("missing hottest move:\n%s", out)
	}
}
