package prof

import (
	"fmt"
	"io"
	"sort"
)

// WriteReport renders the human-readable view of a profile: the CPI
// stack, then the topN most expensive sites (0 = all). The layout is
// stable (golden-tested); machine consumers read the JSON instead.
func WriteReport(w io.Writer, p *Profile, topN int) error {
	if err := p.Validate(); err != nil {
		return err
	}
	fmt.Fprintf(w, "attribution profile (schema %d): %d cycles, %d sites\n\n", p.Schema, p.Cycles, len(p.Sites))

	fmt.Fprintf(w, "CPI stack               cycles       %%\n")
	for _, comp := range p.CPI.Components() {
		fmt.Fprintf(w, "  %-16s %12d  %5.1f%%\n", comp.Name, comp.Cycles, pct(comp.Cycles, p.Cycles))
	}
	fmt.Fprintln(w)

	top := p.TopSites(topN)
	fmt.Fprintf(w, "top %d sites by attributed cycles (catchup + rollback)\n", len(top))
	fmt.Fprintf(w, "%10s %9s %9s %9s %8s %8s %9s %12s %14s %13s %9s\n",
		"pc", "merged", "split", "solo", "diverge", "remerge", "avg-dist",
		"catchup-cyc", "lvip hit/miss", "rollback-cyc", "squashed")
	for i := range top {
		s := &top[i]
		avg := 0.0
		if s.Remerges > 0 {
			avg = float64(s.RemergeDistSum) / float64(s.Remerges)
		}
		fmt.Fprintf(w, "%#10x %9d %9d %9d %8d %8d %9.1f %12d %14s %13d %9d\n",
			s.PC, s.Merged, s.Split, s.Solo, s.Divergences, s.Remerges, avg,
			s.CatchupCycles, fmt.Sprintf("%d/%d", s.LVIPHits, s.LVIPMispredicts),
			s.RollbackCycles, s.SquashedUops)
	}
	if p.Overflow != nil {
		fmt.Fprintf(w, "overflow (sites beyond the per-PC cap): %d diverge, %d catchup-cyc, %d rollback-cyc\n",
			p.Overflow.Divergences, p.Overflow.CatchupCycles, p.Overflow.RollbackCycles)
	}
	return nil
}

// WriteDiff renders before→after regression view of two profiles: the
// cycle and CPI-component movement, then the topN sites with the largest
// attributed-cycle change.
func WriteDiff(w io.Writer, before, after *Profile, topN int) error {
	if err := before.Validate(); err != nil {
		return fmt.Errorf("before: %w", err)
	}
	if err := after.Validate(); err != nil {
		return fmt.Errorf("after: %w", err)
	}
	fmt.Fprintf(w, "profile diff: %d -> %d cycles (%s)\n\n",
		before.Cycles, after.Cycles, pctDelta(before.Cycles, after.Cycles))

	fmt.Fprintf(w, "CPI stack               before        after        delta\n")
	bc, ac := before.CPI.Components(), after.CPI.Components()
	for i := range bc {
		fmt.Fprintf(w, "  %-16s %12d %12d %+12d\n", bc[i].Name, bc[i].Cycles, ac[i].Cycles,
			int64(ac[i].Cycles)-int64(bc[i].Cycles))
	}
	fmt.Fprintln(w)

	// Rank the union of sites by absolute attributed-cycle movement.
	type move struct {
		pc                         uint64
		costD, divergeD, rollbackD int64
	}
	bSites := make(map[uint64]*SiteStats, len(before.Sites))
	for i := range before.Sites {
		bSites[before.Sites[i].PC] = &before.Sites[i]
	}
	seen := make(map[uint64]bool, len(after.Sites))
	var moves []move
	addMove := (func(pc uint64, b, a *SiteStats) {
		var zero SiteStats
		if b == nil {
			b = &zero
		}
		if a == nil {
			a = &zero
		}
		m := move{pc: pc,
			costD:     int64(a.Cost()) - int64(b.Cost()),
			divergeD:  int64(a.Divergences) - int64(b.Divergences),
			rollbackD: int64(a.LVIPMispredicts) - int64(b.LVIPMispredicts),
		}
		if m.costD != 0 || m.divergeD != 0 || m.rollbackD != 0 {
			moves = append(moves, m)
		}
	})
	for i := range after.Sites {
		a := &after.Sites[i]
		seen[a.PC] = true
		addMove(a.PC, bSites[a.PC], a)
	}
	for i := range before.Sites {
		if b := &before.Sites[i]; !seen[b.PC] {
			addMove(b.PC, b, nil)
		}
	}
	sort.Slice(moves, func(i, j int) bool {
		ai, aj := abs64(moves[i].costD), abs64(moves[j].costD)
		if ai != aj {
			return ai > aj
		}
		if moves[i].divergeD != moves[j].divergeD {
			return abs64(moves[i].divergeD) > abs64(moves[j].divergeD)
		}
		return moves[i].pc < moves[j].pc
	})
	if topN > 0 && len(moves) > topN {
		moves = moves[:topN]
	}
	fmt.Fprintf(w, "top %d sites by attributed-cycle change\n", len(moves))
	fmt.Fprintf(w, "%10s %14s %10s %12s\n", "pc", "cost-cyc", "diverge", "lvip-miss")
	for _, m := range moves {
		fmt.Fprintf(w, "%#10x %+14d %+10d %+12d\n", m.pc, m.costD, m.divergeD, m.rollbackD)
	}
	return nil
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func pct(part, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(part) / float64(total)
}

func pctDelta(before, after uint64) string {
	if before == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*(float64(after)-float64(before))/float64(before))
}
